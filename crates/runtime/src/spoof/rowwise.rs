//! The `SpoofRowwise` skeleton: iterates rows of the main input, evaluating
//! the vector register program per row, and applies the Row output variant
//! (paper Table 1, Figure 3(c)).
//!
//! Two backends share every output variant. The **block backend** (default)
//! executes the band-lowered [`RowKernel`]: worker threads own one context
//! per contiguous *row band* (register files allocated once, the kernel's
//! invariant prologue — constants, whole-vector side loads, derivations —
//! replayed once per band), dense side rows are borrowed zero-copy through
//! the [`SideInput`] row-view API, sparse sides feed `VecMatMult` through
//! their CSR rows without densification, and sparse main rows execute
//! directly over their non-zeros whenever the kernel is
//! [`RowKernel::sparse_main_ok`] (the paper's `genexecSparse` split, §2.2).
//! The `Xᵀ(Xv)`-style mv-chain shape additionally takes the
//! [`RowFastKernel::MvChain`] closure-specialized path: one dot + one axpy
//! per row. The **interpreter backend** is the original per-row evaluator,
//! retained as the differential-test oracle.
//!
//! Three vector-execution modes implement the Figure 10 instruction-
//! footprint experiment (DESIGN.md substitution X4): `Vectorized` calls the
//! shared primitives; `Inlined` dispatches per element (inlined generated
//! code); `InterpretedNoJit` adds per-element re-resolution overhead (code
//! too large to JIT).

use crate::side::SideInput;
use fusedml_core::spoof::block::{self, RowFastKernel, RowKernel};
use fusedml_core::spoof::{Instr, Program, Reg, RowExecMode, RowOut, RowSpec};
use fusedml_linalg::ops::{AggOp, BinaryOp, UnaryOp};
use fusedml_linalg::{par, pool, primitives as prim, DenseMatrix, Matrix};
use std::borrow::Cow;

/// Which execution backend the Row skeleton uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowBackend {
    /// The original per-row vector-program interpreter (differential-test
    /// oracle).
    Interp,
    /// Band-lowered execution over the [`RowKernel`] (default): per-band
    /// contexts, invariant hoisting, sparse-aware rows, mv-chain fast path.
    Block,
}

/// Executes a Row operator over the main input's rows (block backend).
pub fn execute(spec: &RowSpec, main: &Matrix, sides: &[SideInput], scalars: &[f64]) -> Matrix {
    execute_with(spec, main, sides, scalars, RowBackend::Block)
}

/// Executes a Row operator under an explicit backend (differential tests pin
/// [`RowBackend::Interp`] as the oracle for the band-lowered path).
pub fn execute_with(
    spec: &RowSpec,
    main: &Matrix,
    sides: &[SideInput],
    scalars: &[f64],
    backend: RowBackend,
) -> Matrix {
    match backend {
        RowBackend::Block => block_exec(spec, main, sides, scalars),
        RowBackend::Interp => interp_exec(spec, main, sides, scalars),
    }
}

/// Per-row work estimate for the parallel-split heuristic: each vector
/// instruction streams roughly one row's worth of values (non-zeros for
/// sparse mains), so the estimate scales with *both* program length and
/// effective row width — short programs over wide rows still parallelize,
/// and long programs over skinny (or very sparse) rows don't run serial.
fn work_per_row(spec: &RowSpec, main: &Matrix) -> usize {
    let eff_cols = match main {
        Matrix::Sparse(s) => (s.nnz() / s.rows().max(1)).max(1),
        Matrix::Dense(_) => main.cols(),
    };
    spec.prog.instrs.len().max(4) * eff_cols.max(4)
}

// ===========================================================================
// Block backend: band contexts over the lowered RowKernel
// ===========================================================================

/// The current main row: a zero-copy dense slice or the raw CSR non-zeros.
#[derive(Clone, Copy)]
enum RowView<'a> {
    Dense(&'a [f64]),
    Sparse { cols: &'a [usize], vals: &'a [f64] },
}

/// Resolves main rows for a band: dense rows are borrowed, sparse rows pass
/// through as non-zeros when the kernel allows, and densify into band-owned
/// scratch otherwise (allocated once per band, not once per row).
struct RowReader<'a> {
    main: &'a Matrix,
    scratch: Vec<f64>,
    sparse_ok: bool,
}

impl<'a> RowReader<'a> {
    fn new(main: &'a Matrix, sparse_ok: bool) -> Self {
        let scratch = match main {
            Matrix::Sparse(_) if !sparse_ok => vec![0.0; main.cols()],
            _ => Vec::new(),
        };
        RowReader { main, scratch, sparse_ok }
    }

    fn view(&mut self, r: usize) -> RowView<'_> {
        match self.main {
            Matrix::Dense(d) => RowView::Dense(d.row(r)),
            Matrix::Sparse(s) if self.sparse_ok => {
                RowView::Sparse { cols: s.row_cols(r), vals: s.row_values(r) }
            }
            Matrix::Sparse(s) => {
                self.scratch.fill(0.0);
                for (c, v) in s.row_iter(r) {
                    self.scratch[c] = v;
                }
                RowView::Dense(&self.scratch)
            }
        }
    }
}

/// Where a vector register's current value lives: an owned band buffer, the
/// (virtual) main row, or a zero-copy borrow of a dense side.
#[derive(Clone, Copy)]
enum VSlot {
    Owned,
    Main,
    /// Slice of a dense side's row-major values (whole-vector loads).
    SideVals {
        side: u16,
        cl: u32,
        cu: u32,
    },
    /// A dense side's row `row`, columns `cl..cu` (broadcast-aware).
    SideRow {
        side: u16,
        row: u32,
        cl: u32,
        cu: u32,
    },
}

/// Per-band execution context: the register files (the paper's preallocated
/// per-thread ring buffer), allocated once per band with the kernel's
/// invariant prologue replayed at construction.
struct BandCtx<'a> {
    kernel: &'a RowKernel,
    spec: &'a RowSpec,
    sides: &'a [SideInput],
    scalars: &'a [f64],
    sregs: Vec<f64>,
    vregs: Vec<Vec<f64>>,
    vslots: Vec<VSlot>,
}

/// `dst += alpha * side[i, :]` — dense rows via the shared axpy primitive,
/// sparse rows over their CSR non-zeros (no densification).
fn side_row_axpy(s: &SideInput, i: usize, alpha: f64, dst: &mut [f64]) {
    match s {
        SideInput::Dense(d) => prim::vect_mult_add(d.row(i), alpha, dst, 0, 0, dst.len()),
        SideInput::Sparse(sp) => {
            for (j, v) in sp.row_iter(i) {
                dst[j] += alpha * v;
            }
        }
    }
}

impl<'a> BandCtx<'a> {
    fn new(
        kernel: &'a RowKernel,
        spec: &'a RowSpec,
        sides: &'a [SideInput],
        scalars: &'a [f64],
    ) -> Self {
        let mut vslots = vec![VSlot::Owned; spec.prog.vreg_lens.len()];
        for &m in &kernel.main_vregs {
            vslots[m as usize] = VSlot::Main;
        }
        let vregs = spec
            .prog
            .vreg_lens
            .iter()
            .enumerate()
            .map(|(i, &l)| if matches!(vslots[i], VSlot::Main) { Vec::new() } else { vec![0.0; l] })
            .collect();
        let mut ctx = BandCtx {
            kernel,
            spec,
            sides,
            scalars,
            sregs: vec![0.0; spec.prog.n_regs as usize],
            vregs,
            vslots,
        };
        for ins in &kernel.invariant {
            ctx.exec_instr(ins, 0, RowView::Dense(&[]));
        }
        ctx
    }

    #[inline]
    fn is_main(&self, v: u16) -> bool {
        matches!(self.vslots[v as usize], VSlot::Main)
    }

    #[inline]
    fn scalar(&self, r: Reg) -> f64 {
        self.sregs[r as usize]
    }

    /// Resolves a vector register to a slice: owned buffer, the dense main
    /// row, or a zero-copy dense side borrow. Panics on a dense read of a
    /// sparse main row — lowering guarantees that never happens.
    fn vref<'s>(&'s self, v: u16, view: RowView<'s>) -> &'s [f64] {
        match self.vslots[v as usize] {
            VSlot::Owned => &self.vregs[v as usize],
            VSlot::Main => match view {
                RowView::Dense(d) => d,
                RowView::Sparse { .. } => unreachable!("dense read of sparse main row"),
            },
            VSlot::SideVals { side, cl, cu } => &self.sides[side as usize]
                .dense_values()
                .expect("dense side")[cl as usize..cu as usize],
            VSlot::SideRow { side, row, cl, cu } => self.sides[side as usize]
                .dense_row(row as usize, cl as usize, cu as usize)
                .expect("dense side"),
        }
    }

    fn run_row(&mut self, rix: usize, view: RowView<'_>) {
        let kernel = self.kernel;
        for ins in &kernel.per_row {
            self.exec_instr(ins, rix, view);
        }
    }

    fn exec_instr(&mut self, ins: &Instr, rix: usize, view: RowView<'_>) {
        let mode = self.spec.exec_mode;
        match *ins {
            // ---- scalar instructions -------------------------------------
            Instr::LoadMain { out } => {
                // Degenerate scalar main (not used by Row plans): the first
                // cell of the current row.
                self.sregs[out as usize] = match view {
                    RowView::Dense(d) => d.first().copied().unwrap_or(0.0),
                    RowView::Sparse { cols, vals } => {
                        if cols.first() == Some(&0) {
                            vals[0]
                        } else {
                            0.0
                        }
                    }
                }
            }
            Instr::LoadUVDot { .. } => panic!("UVDot in Row program"),
            Instr::LoadSide { out, side, access } => {
                self.sregs[out as usize] = self.sides[side].value_at(access, rix, 0)
            }
            Instr::LoadScalar { out, idx } => self.sregs[out as usize] = self.scalars[idx],
            Instr::LoadConst { out, value } => self.sregs[out as usize] = value,
            Instr::Unary { out, op, a } => {
                self.sregs[out as usize] = op.apply(self.sregs[a as usize])
            }
            Instr::Binary { out, op, a, b } => {
                self.sregs[out as usize] = op.apply(self.sregs[a as usize], self.sregs[b as usize])
            }
            Instr::Ternary { out, op, a, b, c } => {
                self.sregs[out as usize] =
                    op.apply(self.sregs[a as usize], self.sregs[b as usize], self.sregs[c as usize])
            }
            // ---- vector loads --------------------------------------------
            Instr::LoadMainRow { .. } => {} // virtual: reads resolve via the view
            Instr::LoadSideRow { out, side, cl, cu } => {
                let s = &self.sides[side];
                // A col-vector side read at full length is a whole-vector
                // view (`v` in `X %*% v`), not a row slice.
                if block::whole_vector_load(s.rows(), s.cols(), cl, cu) {
                    if s.dense_values().is_some() {
                        self.vslots[out as usize] =
                            VSlot::SideVals { side: side as u16, cl: cl as u32, cu: cu as u32 };
                    } else {
                        let mut dst = std::mem::take(&mut self.vregs[out as usize]);
                        s.read_vector_into(&mut dst);
                        self.vregs[out as usize] = dst;
                    }
                } else if s.dense_row(rix, cl, cu).is_some() {
                    let row = if s.rows() == 1 { 0 } else { rix };
                    self.vslots[out as usize] = VSlot::SideRow {
                        side: side as u16,
                        row: row as u32,
                        cl: cl as u32,
                        cu: cu as u32,
                    };
                } else {
                    let mut dst = std::mem::take(&mut self.vregs[out as usize]);
                    s.read_row_into(rix, cl, cu, &mut dst);
                    self.vregs[out as usize] = dst;
                }
            }
            // ---- vector compute ------------------------------------------
            Instr::VecUnary { out, op, a } => {
                let mut dst = std::mem::take(&mut self.vregs[out as usize]);
                vec_unary(mode, op, self.vref(a, view), &mut dst);
                self.vregs[out as usize] = dst;
            }
            Instr::VecBinaryVV { out, op, a, b } => {
                let mut dst = std::mem::take(&mut self.vregs[out as usize]);
                vec_binary_vv(mode, op, self.vref(a, view), self.vref(b, view), &mut dst);
                self.vregs[out as usize] = dst;
            }
            Instr::VecBinaryVS { out, op, a, b, scalar_left } => {
                let s = self.sregs[b as usize];
                let mut dst = std::mem::take(&mut self.vregs[out as usize]);
                vec_binary_vs(mode, op, self.vref(a, view), s, scalar_left, &mut dst);
                self.vregs[out as usize] = dst;
            }
            Instr::VecMatMult { out, a, side } => {
                let mut dst = std::mem::take(&mut self.vregs[out as usize]);
                dst.fill(0.0);
                let s = &self.sides[side];
                match view {
                    RowView::Sparse { cols, vals } if self.is_main(a) => {
                        for (&c, &v) in cols.iter().zip(vals) {
                            side_row_axpy(s, c, v, &mut dst);
                        }
                    }
                    _ => {
                        let src = self.vref(a, view);
                        for (i, &av) in src.iter().enumerate() {
                            if av != 0.0 {
                                side_row_axpy(s, i, av, &mut dst);
                            }
                        }
                    }
                }
                self.vregs[out as usize] = dst;
            }
            Instr::Dot { out, a, b } => {
                let val = match view {
                    RowView::Sparse { cols, vals } if self.is_main(a) || self.is_main(b) => {
                        match (self.is_main(a), self.is_main(b)) {
                            (true, true) => prim::vect_sum_sq(vals, 0, vals.len()),
                            (true, false) => {
                                prim::dot_product_sparse(vals, cols, self.vref(b, view), 0)
                            }
                            _ => prim::dot_product_sparse(vals, cols, self.vref(a, view), 0),
                        }
                    }
                    _ => {
                        let x = self.vref(a, view);
                        let y = self.vref(b, view);
                        prim::dot_product(x, y, 0, 0, x.len())
                    }
                };
                self.sregs[out as usize] = val;
            }
            Instr::VecAgg { out, op, a } => {
                let val = match view {
                    RowView::Sparse { vals, .. } if self.is_main(a) => {
                        let len = self.spec.prog.vreg_lens[a as usize];
                        sparse_agg(op, vals, len)
                    }
                    _ => {
                        let v = self.vref(a, view);
                        dense_agg(op, v)
                    }
                };
                self.sregs[out as usize] = val;
            }
            Instr::VecCumsum { out, a } => {
                let mut dst = std::mem::take(&mut self.vregs[out as usize]);
                dst.copy_from_slice(self.vref(a, view));
                prim::vect_cumsum_inplace(&mut dst);
                self.vregs[out as usize] = dst;
            }
        }
    }

    // ---- output emission -----------------------------------------------

    /// `dst = vregs[src]` (scatter over non-zeros for the sparse main row;
    /// `dst` arrives zeroed).
    fn write_vec(&self, src: u16, view: RowView<'_>, dst: &mut [f64]) {
        if self.is_main(src) {
            if let RowView::Sparse { cols, vals } = view {
                for (&c, &v) in cols.iter().zip(vals) {
                    dst[c] = v;
                }
                return;
            }
        }
        dst.copy_from_slice(self.vref(src, view));
    }

    /// `acc += vregs[src]`.
    fn add_vec(&self, src: u16, view: RowView<'_>, acc: &mut [f64]) {
        if self.is_main(src) {
            if let RowView::Sparse { cols, vals } = view {
                prim::vect_add_sparse(vals, cols, acc, 0);
                return;
            }
        }
        prim::vect_add(self.vref(src, view), acc, 0, 0, acc.len());
    }

    /// `acc += scale * vregs[src]`.
    fn mult_add_vec(&self, src: u16, scale: f64, view: RowView<'_>, acc: &mut [f64]) {
        if self.is_main(src) {
            if let RowView::Sparse { cols, vals } = view {
                prim::vect_mult_add_sparse(vals, cols, scale, acc, 0);
                return;
            }
        }
        prim::vect_mult_add(self.vref(src, view), scale, acc, 0, 0, acc.len());
    }

    /// `acc[i, j] += left[i] * right[j]` over the row-major `orows×ocols`
    /// accumulator, iterating main-row non-zeros where possible.
    fn outer_add(
        &self,
        left: u16,
        right: u16,
        view: RowView<'_>,
        acc: &mut [f64],
        orows: usize,
        ocols: usize,
    ) {
        let (lmain, rmain) = (self.is_main(left), self.is_main(right));
        match view {
            RowView::Sparse { cols, vals } if lmain || rmain => {
                if lmain && rmain {
                    // x ⊗ x (per-row gram): nnz² updates.
                    for (&ci, &vi) in cols.iter().zip(vals) {
                        prim::vect_mult_add_sparse(vals, cols, vi, acc, ci * ocols);
                    }
                } else if lmain {
                    let r = self.vref(right, view);
                    for (&c, &v) in cols.iter().zip(vals) {
                        prim::vect_mult_add(r, v, acc, 0, c * ocols, ocols);
                    }
                } else {
                    let l = self.vref(left, view);
                    for (i, &lv) in l.iter().enumerate().take(orows) {
                        if lv != 0.0 {
                            prim::vect_mult_add_sparse(vals, cols, lv, acc, i * ocols);
                        }
                    }
                }
            }
            _ => {
                let l = self.vref(left, view);
                let r = self.vref(right, view);
                prim::vect_outer_mult_add(l, r, acc, 0, 0, 0, orows, ocols);
            }
        }
    }
}

fn dense_agg(op: AggOp, v: &[f64]) -> f64 {
    match op {
        AggOp::Sum => prim::vect_sum(v, 0, v.len()),
        AggOp::SumSq => prim::vect_sum_sq(v, 0, v.len()),
        AggOp::Min => prim::vect_min(v, 0, v.len()),
        AggOp::Max => prim::vect_max(v, 0, v.len()),
        AggOp::Mean => prim::vect_sum(v, 0, v.len()) / v.len() as f64,
    }
}

/// Aggregates a sparse main row of logical length `len` over its non-zeros;
/// `Min`/`Max` fold in the implicit zeros, `Mean` divides by the full length.
fn sparse_agg(op: AggOp, vals: &[f64], len: usize) -> f64 {
    let mut v = match op {
        AggOp::Sum => prim::vect_sum(vals, 0, vals.len()),
        AggOp::SumSq => prim::vect_sum_sq(vals, 0, vals.len()),
        AggOp::Min => prim::vect_min(vals, 0, vals.len()),
        AggOp::Max => prim::vect_max(vals, 0, vals.len()),
        AggOp::Mean => prim::vect_sum(vals, 0, vals.len()) / len as f64,
    };
    if vals.len() < len {
        match op {
            AggOp::Min => v = v.min(0.0),
            AggOp::Max => v = v.max(0.0),
            _ => {}
        }
    }
    v
}

fn block_exec(spec: &RowSpec, main: &Matrix, sides: &[SideInput], scalars: &[f64]) -> Matrix {
    let side_dims: Vec<(usize, usize)> = sides.iter().map(|s| (s.rows(), s.cols())).collect();
    let kernel = super::kernels().row.get_or_lower(spec, &side_dims);
    let n = main.rows();
    let work = work_per_row(spec, main);
    let add_reduce = |mut a: Vec<f64>, b: Vec<f64>| {
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x += y;
        }
        pool::give(b);
        a
    };
    match &spec.out {
        RowOut::NoAgg { src } => {
            let k = spec.out_cols;
            let mut out = pool::take_zeroed(n * k);
            par::par_row_bands_mut(&mut out, n, k, work, |r0, band| {
                let mut ctx = BandCtx::new(&kernel, spec, sides, scalars);
                let mut rr = RowReader::new(main, kernel.sparse_main_ok);
                for (i, orow) in band.chunks_exact_mut(k).enumerate() {
                    let r = r0 + i;
                    let view = rr.view(r);
                    ctx.run_row(r, view);
                    ctx.write_vec(*src, view, orow);
                }
            });
            Matrix::dense(DenseMatrix::new(n, k, out))
        }
        RowOut::RowAgg { src } => {
            let mut out = pool::take_zeroed(n);
            par::par_row_bands_mut(&mut out, n, 1, work, |r0, band| {
                let mut ctx = BandCtx::new(&kernel, spec, sides, scalars);
                let mut rr = RowReader::new(main, kernel.sparse_main_ok);
                for (i, slot) in band.iter_mut().enumerate() {
                    let r = r0 + i;
                    let view = rr.view(r);
                    ctx.run_row(r, view);
                    *slot = ctx.scalar(*src);
                }
            });
            Matrix::dense(DenseMatrix::new(n, 1, out))
        }
        RowOut::ColAgg { src } => {
            let k = spec.out_cols;
            let acc = par::par_map_reduce(
                n,
                work,
                pool::take_zeroed(k),
                |lo, hi| {
                    let mut ctx = BandCtx::new(&kernel, spec, sides, scalars);
                    let mut rr = RowReader::new(main, kernel.sparse_main_ok);
                    let mut acc = pool::take_zeroed(k);
                    for r in lo..hi {
                        let view = rr.view(r);
                        ctx.run_row(r, view);
                        ctx.add_vec(*src, view, &mut acc);
                    }
                    acc
                },
                add_reduce,
            );
            Matrix::dense(DenseMatrix::new(1, k, acc))
        }
        RowOut::FullAgg { src } => {
            let acc = par::par_map_reduce(
                n,
                work,
                0.0f64,
                |lo, hi| {
                    let mut ctx = BandCtx::new(&kernel, spec, sides, scalars);
                    let mut rr = RowReader::new(main, kernel.sparse_main_ok);
                    let mut acc = 0.0;
                    for r in lo..hi {
                        let view = rr.view(r);
                        ctx.run_row(r, view);
                        acc += ctx.scalar(*src);
                    }
                    acc
                },
                |a, b| a + b,
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
        RowOut::OuterColAgg { left, right } => {
            let (orows, ocols) = (spec.out_rows, spec.out_cols);
            // Closure-specialized `t(X) %*% (X %*% S)` chain: compute the
            // per-row mat-vec product directly and scatter the outer update,
            // skipping the per-row instruction dispatch entirely. Like the
            // mv-chain path, this only stands in for the vectorized mode.
            let fast = match (&kernel.fast, spec.exec_mode) {
                (Some(f @ RowFastKernel::MatVecOuter { .. }), RowExecMode::Vectorized) => Some(f),
                _ => None,
            };
            let acc = par::par_map_reduce(
                n,
                work,
                pool::take_zeroed(orows * ocols),
                |lo, hi| {
                    let mut rr = RowReader::new(main, kernel.sparse_main_ok);
                    let mut acc = pool::take_zeroed(orows * ocols);
                    if let Some(RowFastKernel::MatVecOuter { side, .. }) = fast {
                        let s = &sides[*side];
                        let mut t = vec![0.0f64; ocols];
                        for r in lo..hi {
                            match rr.view(r) {
                                RowView::Dense(x) => {
                                    t.fill(0.0);
                                    for (c, &v) in x.iter().enumerate() {
                                        if v != 0.0 {
                                            side_row_axpy(s, c, v, &mut t);
                                        }
                                    }
                                    prim::vect_outer_mult_add(
                                        x, &t, &mut acc, 0, 0, 0, orows, ocols,
                                    );
                                }
                                RowView::Sparse { cols, vals } => {
                                    t.fill(0.0);
                                    for (&c, &v) in cols.iter().zip(vals) {
                                        side_row_axpy(s, c, v, &mut t);
                                    }
                                    for (&c, &v) in cols.iter().zip(vals) {
                                        prim::vect_mult_add(&t, v, &mut acc, 0, c * ocols, ocols);
                                    }
                                }
                            }
                        }
                    } else {
                        let mut ctx = BandCtx::new(&kernel, spec, sides, scalars);
                        for r in lo..hi {
                            let view = rr.view(r);
                            ctx.run_row(r, view);
                            ctx.outer_add(*left, *right, view, &mut acc, orows, ocols);
                        }
                    }
                    acc
                },
                add_reduce,
            );
            Matrix::dense(DenseMatrix::new(orows, ocols, acc))
        }
        RowOut::ColAggMultAdd { vec, scalar } => {
            let orows = spec.out_rows;
            // The closure-specialized mv-chain path only stands in for the
            // default vectorized mode; the Figure 10 modes keep per-element
            // dispatch semantics through the generic body.
            let fast = match (&kernel.fast, spec.exec_mode) {
                (Some(f @ RowFastKernel::MvChain { .. }), RowExecMode::Vectorized) => Some(f),
                _ => None,
            };
            let acc = par::par_map_reduce(
                n,
                work,
                pool::take_zeroed(orows),
                |lo, hi| {
                    let mut ctx = BandCtx::new(&kernel, spec, sides, scalars);
                    let mut rr = RowReader::new(main, kernel.sparse_main_ok);
                    let mut acc = pool::take_zeroed(orows);
                    if let Some(RowFastKernel::MvChain { v, dot_out, scalar_tail, scalar_src }) =
                        fast
                    {
                        for r in lo..hi {
                            let view = rr.view(r);
                            let d = {
                                let vv = ctx.vref(*v, view);
                                match view {
                                    RowView::Dense(x) => prim::dot_product(x, vv, 0, 0, x.len()),
                                    RowView::Sparse { cols, vals } => {
                                        prim::dot_product_sparse(vals, cols, vv, 0)
                                    }
                                }
                            };
                            ctx.sregs[*dot_out as usize] = d;
                            for ins in scalar_tail {
                                ctx.exec_instr(ins, r, view);
                            }
                            let s = ctx.scalar(*scalar_src);
                            match view {
                                RowView::Dense(x) => {
                                    prim::vect_mult_add(x, s, &mut acc, 0, 0, orows)
                                }
                                RowView::Sparse { cols, vals } => {
                                    prim::vect_mult_add_sparse(vals, cols, s, &mut acc, 0)
                                }
                            }
                        }
                    } else {
                        for r in lo..hi {
                            let view = rr.view(r);
                            ctx.run_row(r, view);
                            let s = ctx.scalar(*scalar);
                            ctx.mult_add_vec(*vec, s, view, &mut acc);
                        }
                    }
                    acc
                },
                add_reduce,
            );
            Matrix::dense(DenseMatrix::new(orows, 1, acc))
        }
    }
}

// ===========================================================================
// Interpreter backend (the differential-test oracle)
// ===========================================================================

fn interp_exec(spec: &RowSpec, main: &Matrix, sides: &[SideInput], scalars: &[f64]) -> Matrix {
    let n = main.rows();
    let work = work_per_row(spec, main);
    // Side matrices used by VecMatMult need row-major access: dense sides
    // are borrowed (the Cow stays Borrowed), sparse sides densify once.
    let dense_sides: Vec<Option<Cow<'_, [f64]>>> = (0..sides.len())
        .map(|s| {
            let used = spec
                .prog
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::VecMatMult { side, .. } if *side == s));
            used.then(|| sides[s].to_dense_values())
        })
        .collect();

    match &spec.out {
        RowOut::NoAgg { src } => {
            let k = spec.out_cols;
            let mut out = pool::take_zeroed(n * k);
            par::par_row_bands_mut(&mut out, n, k, work, |r0, band| {
                let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                for (i, orow) in band.chunks_exact_mut(k).enumerate() {
                    ctx.run_row(r0 + i);
                    orow.copy_from_slice(&ctx.vregs[*src as usize]);
                }
            });
            Matrix::dense(DenseMatrix::new(n, k, out))
        }
        RowOut::RowAgg { src } => {
            let mut out = pool::take_zeroed(n);
            par::par_row_bands_mut(&mut out, n, 1, work, |r0, band| {
                let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                for (i, slot) in band.iter_mut().enumerate() {
                    ctx.run_row(r0 + i);
                    *slot = ctx.sregs[*src as usize];
                }
            });
            Matrix::dense(DenseMatrix::new(n, 1, out))
        }
        RowOut::ColAgg { src } => {
            let k = spec.out_cols;
            let acc = par::par_map_reduce(
                n,
                work,
                pool::take_zeroed(k),
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = pool::take_zeroed(k);
                    for r in lo..hi {
                        ctx.run_row(r);
                        prim::vect_add(&ctx.vregs[*src as usize], &mut acc, 0, 0, k);
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += y;
                    }
                    pool::give(b);
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(1, k, acc))
        }
        RowOut::FullAgg { src } => {
            let acc = par::par_map_reduce(
                n,
                work,
                0.0f64,
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = 0.0;
                    for r in lo..hi {
                        ctx.run_row(r);
                        acc += ctx.sregs[*src as usize];
                    }
                    acc
                },
                |a, b| a + b,
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
        RowOut::OuterColAgg { left, right } => {
            let (orows, ocols) = (spec.out_rows, spec.out_cols);
            let acc = par::par_map_reduce(
                n,
                work,
                pool::take_zeroed(orows * ocols),
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = pool::take_zeroed(orows * ocols);
                    for r in lo..hi {
                        ctx.run_row(r);
                        let l = &ctx.vregs[*left as usize];
                        let rv = &ctx.vregs[*right as usize];
                        prim::vect_outer_mult_add(l, rv, &mut acc, 0, 0, 0, orows, ocols);
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += y;
                    }
                    pool::give(b);
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(orows, ocols, acc))
        }
        RowOut::ColAggMultAdd { vec, scalar } => {
            let orows = spec.out_rows;
            let acc = par::par_map_reduce(
                n,
                work,
                pool::take_zeroed(orows),
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = pool::take_zeroed(orows);
                    for r in lo..hi {
                        ctx.run_row(r);
                        let v = &ctx.vregs[*vec as usize];
                        let s = ctx.sregs[*scalar as usize];
                        prim::vect_mult_add(v, s, &mut acc, 0, 0, orows);
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += y;
                    }
                    pool::give(b);
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(orows, 1, acc))
        }
    }
}

/// Per-thread execution context of the interpreter backend.
struct RowCtx<'a> {
    spec: &'a RowSpec,
    main: &'a Matrix,
    sides: &'a [SideInput],
    scalars: &'a [f64],
    dense_sides: &'a [Option<Cow<'a, [f64]>>],
    sregs: Vec<f64>,
    vregs: Vec<Vec<f64>>,
    main_buf: Vec<f64>,
}

impl<'a> RowCtx<'a> {
    fn new(
        spec: &'a RowSpec,
        main: &'a Matrix,
        sides: &'a [SideInput],
        scalars: &'a [f64],
        dense_sides: &'a [Option<Cow<'a, [f64]>>],
    ) -> Self {
        RowCtx {
            spec,
            main,
            sides,
            scalars,
            dense_sides,
            sregs: vec![0.0; spec.prog.n_regs as usize],
            vregs: spec.prog.vreg_lens.iter().map(|&l| vec![0.0; l]).collect(),
            main_buf: vec![0.0; main.cols()],
        }
    }

    /// Loads the main row into the context buffer (dense copy or sparse
    /// densification, the `genexecDense`/`genexecSparse` split of §2.2).
    fn load_main_row(&mut self, r: usize) {
        match self.main {
            Matrix::Dense(d) => self.main_buf.copy_from_slice(d.row(r)),
            Matrix::Sparse(s) => {
                self.main_buf.fill(0.0);
                for (c, v) in s.row_iter(r) {
                    self.main_buf[c] = v;
                }
            }
        }
    }

    fn run_row(&mut self, rix: usize) {
        self.load_main_row(rix);
        let prog: &Program = &self.spec.prog;
        let mode = self.spec.exec_mode;
        for ins in &prog.instrs {
            match *ins {
                Instr::LoadMain { out } => {
                    // Degenerate scalar main (not used by Row plans, but
                    // kept for completeness): first cell of the row.
                    self.sregs[out as usize] = self.main_buf.first().copied().unwrap_or(0.0)
                }
                Instr::LoadUVDot { .. } => panic!("UVDot in Row program"),
                Instr::LoadSide { out, side, access } => {
                    self.sregs[out as usize] = self.sides[side].value_at(access, rix, 0)
                }
                Instr::LoadScalar { out, idx } => self.sregs[out as usize] = self.scalars[idx],
                Instr::LoadConst { out, value } => self.sregs[out as usize] = value,
                Instr::Unary { out, op, a } => {
                    self.sregs[out as usize] = op.apply(self.sregs[a as usize])
                }
                Instr::Binary { out, op, a, b } => {
                    self.sregs[out as usize] =
                        op.apply(self.sregs[a as usize], self.sregs[b as usize])
                }
                Instr::Ternary { out, op, a, b, c } => {
                    self.sregs[out as usize] = op.apply(
                        self.sregs[a as usize],
                        self.sregs[b as usize],
                        self.sregs[c as usize],
                    )
                }
                Instr::LoadMainRow { out } => {
                    let dst = &mut self.vregs[out as usize];
                    dst.copy_from_slice(&self.main_buf);
                }
                Instr::LoadSideRow { out, side, cl, cu } => {
                    let s = &self.sides[side];
                    let dst = &mut self.vregs[out as usize];
                    // A col-vector side read at full length is a whole-vector
                    // view (`v` in `X %*% v`), not a row slice.
                    if block::whole_vector_load(s.rows(), s.cols(), cl, cu) {
                        s.read_vector_into(dst);
                    } else {
                        s.read_row_into(rix, cl, cu, dst);
                    }
                }
                Instr::VecUnary { out, op, a } => {
                    let (dst, src) = two_vregs(&mut self.vregs, out, a);
                    vec_unary(mode, op, src, dst);
                }
                Instr::VecBinaryVV { out, op, a, b } => {
                    // Registers are SSA-allocated: `out` differs from both
                    // sources. Move `b` out to satisfy the borrow checker
                    // without copying, restoring it afterwards.
                    let b_vals = std::mem::take(&mut self.vregs[b as usize]);
                    let (dst, x) = two_vregs(&mut self.vregs, out, a);
                    let xs: &[f64] = if a == b { &b_vals } else { x };
                    vec_binary_vv(mode, op, xs, &b_vals, dst);
                    self.vregs[b as usize] = b_vals;
                }
                Instr::VecBinaryVS { out, op, a, b, scalar_left } => {
                    let s = self.sregs[b as usize];
                    let (dst, src) = two_vregs(&mut self.vregs, out, a);
                    vec_binary_vs(mode, op, src, s, scalar_left, dst);
                }
                Instr::VecMatMult { out, a, side } => {
                    let bvals =
                        self.dense_sides[side].as_deref().expect("side densified for VecMatMult");
                    let k = self.sides[side].cols();
                    let (dst, src) = two_vregs(&mut self.vregs, out, a);
                    let len = src.len();
                    dst.fill(0.0);
                    for (i, &av) in src.iter().enumerate().take(len) {
                        if av != 0.0 {
                            prim::vect_mult_add(&bvals[i * k..(i + 1) * k], av, dst, 0, 0, k);
                        }
                    }
                }
                Instr::Dot { out, a, b } => {
                    let x = &self.vregs[a as usize];
                    let y = &self.vregs[b as usize];
                    self.sregs[out as usize] = prim::dot_product(x, y, 0, 0, x.len());
                }
                Instr::VecAgg { out, op, a } => {
                    self.sregs[out as usize] = dense_agg(op, &self.vregs[a as usize]);
                }
                Instr::VecCumsum { out, a } => {
                    let src = self.vregs[a as usize].clone();
                    let dst = &mut self.vregs[out as usize];
                    dst.copy_from_slice(&src);
                    prim::vect_cumsum_inplace(dst);
                }
            }
        }
    }
}

/// Borrows two distinct vector registers mutably/immutably.
fn two_vregs(vregs: &mut [Vec<f64>], out: u16, a: u16) -> (&mut [f64], &[f64]) {
    assert_ne!(out, a, "vector registers are SSA-allocated");
    let (o, a) = (out as usize, a as usize);
    if o < a {
        let (lo, hi) = vregs.split_at_mut(a);
        (&mut lo[o], &hi[0])
    } else {
        let (lo, hi) = vregs.split_at_mut(o);
        (&mut hi[0], &lo[a])
    }
}

// ---- vector kernels per execution mode ------------------------------------

fn vec_unary(mode: RowExecMode, op: UnaryOp, src: &[f64], dst: &mut [f64]) {
    match mode {
        RowExecMode::Vectorized => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = op.apply(s);
            }
        }
        RowExecMode::Inlined => {
            for i in 0..src.len() {
                dst[i] = apply_unary_inlined(op, src[i]);
            }
        }
        RowExecMode::InterpretedNoJit => {
            for i in 0..src.len() {
                dst[i] = apply_unary_nojit(op, src[i]);
            }
        }
    }
}

fn vec_binary_vv(mode: RowExecMode, op: BinaryOp, a: &[f64], b: &[f64], dst: &mut [f64]) {
    match mode {
        RowExecMode::Vectorized => match op {
            BinaryOp::Add => dst.copy_from_slice(&prim::vect_add_write(a, b, 0, 0, a.len())),
            BinaryOp::Sub => dst.copy_from_slice(&prim::vect_minus_write(a, b, 0, 0, a.len())),
            BinaryOp::Mult => dst.copy_from_slice(&prim::vect_mult_write(a, b, 0, 0, a.len())),
            BinaryOp::Div => dst.copy_from_slice(&prim::vect_div_write(a, b, 0, 0, a.len())),
            _ => {
                for i in 0..a.len() {
                    dst[i] = op.apply(a[i], b[i]);
                }
            }
        },
        RowExecMode::Inlined => {
            for i in 0..a.len() {
                dst[i] = apply_binary_inlined(op, a[i], b[i]);
            }
        }
        RowExecMode::InterpretedNoJit => {
            for i in 0..a.len() {
                dst[i] = apply_binary_nojit(op, a[i], b[i]);
            }
        }
    }
}

fn vec_binary_vs(
    mode: RowExecMode,
    op: BinaryOp,
    a: &[f64],
    s: f64,
    scalar_left: bool,
    dst: &mut [f64],
) {
    match mode {
        RowExecMode::Vectorized => {
            if scalar_left {
                for (d, &x) in dst.iter_mut().zip(a) {
                    *d = op.apply(s, x);
                }
            } else {
                for (d, &x) in dst.iter_mut().zip(a) {
                    *d = op.apply(x, s);
                }
            }
        }
        RowExecMode::Inlined => {
            for i in 0..a.len() {
                dst[i] = if scalar_left {
                    apply_binary_inlined(op, s, a[i])
                } else {
                    apply_binary_inlined(op, a[i], s)
                };
            }
        }
        RowExecMode::InterpretedNoJit => {
            for i in 0..a.len() {
                dst[i] = if scalar_left {
                    apply_binary_nojit(op, s, a[i])
                } else {
                    apply_binary_nojit(op, a[i], s)
                };
            }
        }
    }
}

/// Per-element dispatch with inlining suppressed: models generated code
/// whose primitives were inlined (larger instruction footprint, no
/// vectorization across the row).
#[inline(never)]
fn apply_unary_inlined(op: UnaryOp, a: f64) -> f64 {
    op.apply(a)
}

#[inline(never)]
fn apply_binary_inlined(op: BinaryOp, a: f64, b: f64) -> f64 {
    op.apply(a, b)
}

/// Per-element dispatch through a dynamically resolved function, modelling
/// interpretation of code the JIT refused to compile.
#[inline(never)]
fn apply_unary_nojit(op: UnaryOp, a: f64) -> f64 {
    let f: fn(UnaryOp, f64) -> f64 = apply_unary_inlined;
    std::hint::black_box(f)(std::hint::black_box(op), std::hint::black_box(a))
}

#[inline(never)]
fn apply_binary_nojit(op: BinaryOp, a: f64, b: f64) -> f64 {
    let f: fn(BinaryOp, f64, f64) -> f64 = apply_binary_inlined;
    std::hint::black_box(f)(
        std::hint::black_box(op),
        std::hint::black_box(a),
        std::hint::black_box(b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::Program;
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::{self, AggDir};

    /// Spec for `t(X) %*% (X %*% v)` — Row with ColAggMultAdd output.
    fn mv_chain_spec(m: usize) -> RowSpec {
        RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::LoadSideRow { out: 1, side: 0, cl: 0, cu: m },
                    Instr::Dot { out: 0, a: 0, b: 1 },
                ],
                n_regs: 1,
                vreg_lens: vec![m, m],
            },
            out: RowOut::ColAggMultAdd { vec: 0, scalar: 0 },
            out_rows: m,
            out_cols: 1,
            exec_mode: RowExecMode::Vectorized,
        }
    }

    #[test]
    fn mv_chain_matches_reference() {
        let (n, m) = (200, 30);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 1);
        let v = generate::rand_dense(m, 1, -1.0, 1.0, 2);
        for backend in [RowBackend::Interp, RowBackend::Block] {
            let out = execute_with(&mv_chain_spec(m), &x, &[SideInput::bind(&v)], &[], backend);
            let xv = ops::matmult(&x, &v);
            let expect = ops::matmult(&ops::transpose(&x), &xv);
            assert!(out.approx_eq(&expect, 1e-9), "{backend:?}: X^T(Xv) fused vs reference");
        }
    }

    #[test]
    fn mv_chain_sparse_main_agrees() {
        let (n, m) = (300, 25);
        let xs = generate::rand_matrix(n, m, -1.0, 1.0, 0.1, 3);
        let v = generate::rand_dense(m, 1, -1.0, 1.0, 4);
        for backend in [RowBackend::Interp, RowBackend::Block] {
            let out = execute_with(&mv_chain_spec(m), &xs, &[SideInput::bind(&v)], &[], backend);
            let expect = ops::matmult(&ops::transpose(&xs), &ops::matmult(&xs, &v));
            assert!(out.approx_eq(&expect, 1e-9), "{backend:?}");
        }
    }

    #[test]
    fn mv_chain_sparse_sides_agree() {
        // Sparse main AND sparse v: the block path must stay exact without
        // ever densifying either (the kernel is sparse_main_ok).
        let (n, m) = (300, 25);
        let xs = generate::rand_matrix(n, m, -1.0, 1.0, 0.1, 5);
        let vs = generate::rand_matrix(m, 1, -1.0, 1.0, 0.4, 6);
        let oracle =
            execute_with(&mv_chain_spec(m), &xs, &[SideInput::bind(&vs)], &[], RowBackend::Interp);
        let got =
            execute_with(&mv_chain_spec(m), &xs, &[SideInput::bind(&vs)], &[], RowBackend::Block);
        assert!(got.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn exec_modes_agree_numerically() {
        let (n, m) = (100, 40);
        let x = generate::rand_dense(n, m, 0.5, 2.0, 5);
        // X / rowSums(X), then row sums again: exercises VS + agg.
        let spec = |mode| RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::VecAgg { out: 0, op: AggOp::Sum, a: 0 },
                    Instr::VecBinaryVS {
                        out: 1,
                        op: BinaryOp::Div,
                        a: 0,
                        b: 0,
                        scalar_left: false,
                    },
                    Instr::VecAgg { out: 1, op: AggOp::Sum, a: 1 },
                ],
                n_regs: 2,
                vreg_lens: vec![m, m],
            },
            out: RowOut::RowAgg { src: 1 },
            out_rows: n,
            out_cols: 1,
            exec_mode: mode,
        };
        let a = execute(&spec(RowExecMode::Vectorized), &x, &[], &[]);
        let b = execute(&spec(RowExecMode::Inlined), &x, &[], &[]);
        let c = execute(&spec(RowExecMode::InterpretedNoJit), &x, &[], &[]);
        assert!(a.approx_eq(&b, 1e-12));
        assert!(a.approx_eq(&c, 1e-12));
        // Every row sums to 1 after normalization.
        for r in 0..n {
            assert!(fusedml_linalg::approx_eq(a.get(r, 0), 1.0, 1e-9));
        }
    }

    #[test]
    fn no_agg_writes_rows() {
        let (n, m) = (50, 10);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 7);
        let spec = RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::LoadConst { out: 0, value: 2.0 },
                    Instr::VecBinaryVS {
                        out: 1,
                        op: BinaryOp::Mult,
                        a: 0,
                        b: 0,
                        scalar_left: false,
                    },
                ],
                n_regs: 1,
                vreg_lens: vec![m, m],
            },
            out: RowOut::NoAgg { src: 1 },
            out_rows: n,
            out_cols: m,
            exec_mode: RowExecMode::Vectorized,
        };
        for backend in [RowBackend::Interp, RowBackend::Block] {
            let out = execute_with(&spec, &x, &[], &[], backend);
            let expect = ops::binary_scalar(&x, 2.0, BinaryOp::Mult);
            assert!(out.approx_eq(&expect, 1e-12), "{backend:?}");
        }
    }

    #[test]
    fn col_agg_matches_colsums() {
        let (n, m) = (80, 12);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 8);
        let spec = RowSpec {
            prog: Program {
                instrs: vec![Instr::LoadMainRow { out: 0 }],
                n_regs: 0,
                vreg_lens: vec![m],
            },
            out: RowOut::ColAgg { src: 0 },
            out_rows: 1,
            out_cols: m,
            exec_mode: RowExecMode::Vectorized,
        };
        for backend in [RowBackend::Interp, RowBackend::Block] {
            let out = execute_with(&spec, &x, &[], &[], backend);
            let expect = ops::agg(&x, AggOp::Sum, AggDir::Col);
            assert!(out.approx_eq(&expect, 1e-9), "{backend:?}");
        }
    }

    #[test]
    fn vect_mat_mult_instruction() {
        // X %*% V per row with OuterColAgg → t(X) %*% (X %*% V).
        let (n, m, k) = (60, 14, 3);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 9);
        let v = generate::rand_dense(m, k, -1.0, 1.0, 10);
        let spec = RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::VecMatMult { out: 1, a: 0, side: 0 },
                ],
                n_regs: 0,
                vreg_lens: vec![m, k],
            },
            out: RowOut::OuterColAgg { left: 0, right: 1 },
            out_rows: m,
            out_cols: k,
            exec_mode: RowExecMode::Vectorized,
        };
        for backend in [RowBackend::Interp, RowBackend::Block] {
            let out = execute_with(&spec, &x, &[SideInput::bind(&v)], &[], backend);
            let expect = ops::matmult(&ops::transpose(&x), &ops::matmult(&x, &v));
            assert!(out.approx_eq(&expect, 1e-9), "{backend:?}");
        }
    }

    #[test]
    fn vect_mat_mult_sparse_main_and_side() {
        // Sparse X and sparse V: per-row VecMatMult iterates non-zeros and
        // CSR side rows — results must match the densifying oracle.
        let (n, m, k) = (80, 20, 5);
        let x = generate::rand_matrix(n, m, -1.0, 1.0, 0.15, 11);
        let v = generate::rand_matrix(m, k, -1.0, 1.0, 0.4, 12);
        let spec = RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::VecMatMult { out: 1, a: 0, side: 0 },
                ],
                n_regs: 0,
                vreg_lens: vec![m, k],
            },
            out: RowOut::OuterColAgg { left: 0, right: 1 },
            out_rows: m,
            out_cols: k,
            exec_mode: RowExecMode::Vectorized,
        };
        let sides = [SideInput::bind(&v)];
        let oracle = execute_with(&spec, &x, &sides, &[], RowBackend::Interp);
        let got = execute_with(&spec, &x, &sides, &[], RowBackend::Block);
        assert!(got.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn work_heuristic_tracks_program_length_and_sparsity() {
        let dense = generate::rand_dense(10, 1000, -1.0, 1.0, 1);
        let sparse = generate::rand_matrix(1000, 1000, -1.0, 1.0, 0.01, 2);
        let short = mv_chain_spec(1000);
        let mut long = mv_chain_spec(1000);
        for _ in 0..20 {
            long.prog.instrs.push(Instr::LoadConst { out: 0, value: 1.0 });
        }
        // Longer programs mean more work per row.
        assert!(work_per_row(&long, &dense) > work_per_row(&short, &dense));
        // Sparse rows cost by their non-zeros, not the full width.
        assert!(work_per_row(&short, &sparse) < work_per_row(&short, &dense));
    }
}
