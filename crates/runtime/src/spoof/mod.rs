//! Template skeletons: hand-coded data-access shells that call the
//! generated register programs per value (paper §2.2, Figure 4).
//!
//! "We made the conscious design decision not to generate the data access
//! into the fused operators. Instead, the hand-coded skeleton implements the
//! data access — depending on its sparse-safeness over cells or non-zero
//! values — of dense, sparse, or compressed matrices and calls an abstract
//! genexec method for each value."
//!
//! Cell/MAgg/Outer skeletons drive the tile-vectorized block backend
//! (`tiles::TileRunner`); the Row skeleton drives the band-lowered
//! `RowKernel` with per-band register contexts and sparse-aware row views.

pub mod cellwise;
pub mod compressed;
pub mod multiagg;
pub mod outerprod;
pub mod rowwise;
pub mod tiles;

use crate::side::SideInput;
use fusedml_core::plancache::KernelCaches;
use fusedml_core::spoof::block::{CellBackend, RowFastKernel};
use fusedml_core::spoof::mono::ShapeClass;
use fusedml_core::spoof::{FusedSpec, Program, Reg, RowExecMode, RowOut};
use fusedml_linalg::{scoped, Matrix};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static CURRENT_KERNELS: scoped::Stack<Arc<KernelCaches>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an installed kernel-cache scope (see [`enter_kernels`]);
/// the shared [`scoped`] machinery debug-asserts LIFO drop order.
pub struct KernelScope {
    _guard: scoped::Guard<Arc<KernelCaches>>,
}

/// Installs an engine's kernel caches as the current thread's lowering cache
/// until the returned guard drops. The executor enters a scope around each
/// task, so the skeletons resolve lowered block/row kernels from the engine
/// that compiled them — there is no process-wide kernel cache. Outside any
/// scope the skeletons lower uncached (correct, just slower; only exercised
/// by direct skeleton tests).
pub fn enter_kernels(caches: &Arc<KernelCaches>) -> KernelScope {
    KernelScope { _guard: scoped::push(&CURRENT_KERNELS, Arc::clone(caches)) }
}

/// The kernel caches the skeletons should lower through: the innermost
/// installed scope, or a fresh empty set when executing outside any engine.
pub(crate) fn kernels() -> Arc<KernelCaches> {
    scoped::top(&CURRENT_KERNELS).unwrap_or_else(|| Arc::new(KernelCaches::default()))
}

/// Classifies the kernel family a fused operator executes under with the
/// currently scoped kernel caches: a [`ShapeClass`] whose
/// [`is_specialized`](ShapeClass::is_specialized) is true means a static
/// (closure-specialized or monomorphized) kernel carries the inner loops;
/// `Interpreted` means the generic tile/band interpreter replays the
/// register program per tile. `side_dims` follows the operator's side
/// binding order (the Row kernel cache is keyed on side geometry).
pub fn kernel_class(spec: &FusedSpec, side_dims: &[(usize, usize)]) -> ShapeClass {
    let caches = kernels();
    let backend = caches.backend;
    match spec {
        FusedSpec::Cell(c) => {
            block_class(&caches, backend, &c.prog, std::slice::from_ref(&c.result))
        }
        FusedSpec::MAgg(m) => {
            let regs: Vec<Reg> = m.results.iter().map(|&(r, _)| r).collect();
            block_class(&caches, backend, &m.prog, &regs)
        }
        FusedSpec::Outer(o) => {
            block_class(&caches, backend, &o.prog, std::slice::from_ref(&o.result))
        }
        FusedSpec::Row(r) => {
            if r.exec_mode != RowExecMode::Vectorized {
                return ShapeClass::Interpreted;
            }
            let kernel = caches.row.get_or_lower(r, side_dims);
            match (&kernel.fast, &r.out) {
                (Some(RowFastKernel::MvChain { .. }), RowOut::ColAggMultAdd { .. }) => {
                    ShapeClass::MvChain
                }
                (Some(RowFastKernel::MatVecOuter { .. }), RowOut::OuterColAgg { .. }) => {
                    ShapeClass::MatVecOuter
                }
                _ => ShapeClass::Interpreted,
            }
        }
    }
}

/// The block-template shape class: specialized only when *every* result
/// register resolves to a fast or monomorphized kernel under `backend`
/// (otherwise the generic tile body still runs and the operator counts as
/// interpreted). Multi-result operators report the first register's class.
fn block_class(
    caches: &KernelCaches,
    backend: CellBackend,
    prog: &Program,
    regs: &[Reg],
) -> ShapeClass {
    if backend == CellBackend::Scalar || regs.is_empty() {
        return ShapeClass::Interpreted;
    }
    let kernel = caches.block.get_or_lower(prog);
    if !tiles::supported(&kernel) {
        return ShapeClass::Interpreted;
    }
    let fast_ok = matches!(backend, CellBackend::BlockFast | CellBackend::Mono);
    let mono_ok = backend == CellBackend::Mono;
    let mut first: Option<ShapeClass> = None;
    for &r in regs {
        let class = if fast_ok && kernel.fast_for(r).is_some() {
            kernel.shape_class(r)
        } else if mono_ok {
            kernel.mono_for(r).map_or(ShapeClass::Interpreted, |m| m.class())
        } else {
            ShapeClass::Interpreted
        };
        if !class.is_specialized() {
            return ShapeClass::Interpreted;
        }
        first.get_or_insert(class);
    }
    first.unwrap_or(ShapeClass::Interpreted)
}

/// Executes a compiled fused operator over bound inputs.
///
/// `main` is the template's main input (Cell/MAgg/Outer iterate its
/// cells/non-zeros; Row iterates its rows); `sides` and `scalars` follow the
/// CPlan's binding order. Returns the operator output(s): one matrix except
/// for MultiAgg, which returns one 1×1 matrix per aggregate.
pub fn execute(
    spec: &FusedSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
) -> Vec<Matrix> {
    match spec {
        FusedSpec::Cell(c) => {
            vec![cellwise::execute(c, main, sides, scalars, iter_rows, iter_cols)]
        }
        FusedSpec::MAgg(m) => multiagg::execute(m, main, sides, scalars, iter_rows, iter_cols),
        FusedSpec::Row(r) => {
            vec![rowwise::execute(
                r,
                main.expect("Row template requires a main input"),
                sides,
                scalars,
            )]
        }
        FusedSpec::Outer(o) => {
            vec![outerprod::execute(o, main, sides, scalars, iter_rows, iter_cols)]
        }
    }
}
