//! The `SpoofCellwise` skeleton: iterates cells (or non-zeros when the
//! generated function is sparse-safe) of the main input and applies the
//! scalar register program, with no-agg / row-agg / col-agg / full-agg
//! variants (paper Table 1, Figure 4).

use crate::side::SideInput;
use fusedml_core::spoof::{eval_scalar_program, CellAgg, CellSpec, SideAccess};
use fusedml_linalg::ops::AggOp;
use fusedml_linalg::{par, DenseMatrix, Matrix, SparseMatrix};

/// Executes a Cell operator.
pub fn execute(
    spec: &CellSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
) -> Matrix {
    match (main, spec.sparse_safe) {
        (Some(Matrix::Sparse(s)), true) => sparse_safe_exec(spec, s, sides, scalars),
        (Some(m), _) => dense_exec(spec, Some(m), sides, scalars, iter_rows, iter_cols),
        (None, _) => dense_exec(spec, None, sides, scalars, iter_rows, iter_cols),
    }
}

/// Evaluates the program for one (rix, cix) position.
#[inline]
fn exec_cell(
    spec: &CellSpec,
    regs: &mut [f64],
    a: f64,
    sides: &[SideInput],
    scalars: &[f64],
    rix: usize,
    cix: usize,
) -> f64 {
    let side_at = |i: usize, acc: SideAccess| sides[i].value_at(acc, rix, cix);
    eval_scalar_program(&spec.prog, regs, a, 0.0, &side_at, scalars);
    regs[spec.result as usize]
}

fn dense_exec(
    spec: &CellSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    rows: usize,
    cols: usize,
) -> Matrix {
    let main_get = |r: usize, c: usize| main.map_or(0.0, |m| m.get(r, c));
    match spec.agg {
        CellAgg::NoAgg => {
            let mut out = vec![0.0f64; rows * cols];
            par::par_rows_mut(&mut out, rows, cols.max(1), cols.max(1) * 4, |r, orow| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                for (c, slot) in orow.iter_mut().enumerate() {
                    *slot = exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c);
                }
            });
            Matrix::dense(DenseMatrix::new(rows, cols, out))
        }
        CellAgg::RowAgg(op) => {
            let mut out = vec![0.0f64; rows];
            par::par_rows_mut(&mut out, rows, 1, cols.max(1) * 4, |r, slot| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                let mut acc = op.identity();
                for c in 0..cols {
                    acc = op.fold_value(
                        acc,
                        exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c),
                    );
                }
                slot[0] = acc;
            });
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        CellAgg::ColAgg(op) => {
            let acc = par::par_map_reduce(
                rows,
                cols.max(1) * 4,
                vec![op.identity(); cols],
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = vec![op.identity(); cols];
                    for r in lo..hi {
                        for (c, slot) in acc.iter_mut().enumerate() {
                            *slot = op.fold_value(
                                *slot,
                                exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c),
                            );
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x = op.combine(*x, y);
                    }
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
        CellAgg::FullAgg(op) => {
            let acc = par::par_map_reduce(
                rows,
                cols.max(1) * 4,
                op.identity(),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = op.identity();
                    for r in lo..hi {
                        for c in 0..cols {
                            acc = op.fold_value(
                                acc,
                                exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c),
                            );
                        }
                    }
                    acc
                },
                |a, b| op.combine(a, b),
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
    }
}

/// Sparse-safe execution over non-zeros only.
fn sparse_safe_exec(
    spec: &CellSpec,
    main: &SparseMatrix,
    sides: &[SideInput],
    scalars: &[f64],
) -> Matrix {
    let (rows, cols) = (main.rows(), main.cols());
    match spec.agg {
        CellAgg::NoAgg => {
            let mut triples = Vec::with_capacity(main.nnz());
            let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
            for r in 0..rows {
                for (c, v) in main.row_iter(r) {
                    let out = exec_cell(spec, &mut regs, v, sides, scalars, r, c);
                    if out != 0.0 {
                        triples.push((r, c, out));
                    }
                }
            }
            Matrix::sparse(SparseMatrix::from_triples(rows, cols, triples))
        }
        CellAgg::RowAgg(op) => {
            let mut out = vec![0.0f64; rows];
            let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
            for (r, slot) in out.iter_mut().enumerate() {
                let mut acc = op.identity();
                for (c, v) in main.row_iter(r) {
                    acc = op.fold_value(acc, exec_cell(spec, &mut regs, v, sides, scalars, r, c));
                }
                // Pseudo-sparse-safe aggregation: min/max must still observe
                // the implicit zeros (which map to zero under sparse-safety).
                if !op.sparse_safe() && main.row_nnz(r) < cols {
                    acc = op.fold_value(acc, 0.0);
                }
                *slot = finalize(op, acc, cols);
            }
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        CellAgg::ColAgg(op) => {
            let mut acc = vec![op.identity(); cols];
            let mut counts = vec![0usize; cols];
            let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
            for r in 0..rows {
                for (c, v) in main.row_iter(r) {
                    acc[c] =
                        op.fold_value(acc[c], exec_cell(spec, &mut regs, v, sides, scalars, r, c));
                    counts[c] += 1;
                }
            }
            for c in 0..cols {
                if !op.sparse_safe() && counts[c] < rows {
                    acc[c] = op.fold_value(acc[c], 0.0);
                }
                acc[c] = finalize(op, acc[c], rows);
            }
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
        CellAgg::FullAgg(op) => {
            let acc = par::par_map_reduce(
                rows,
                (main.nnz() / rows.max(1)).max(1) * 4,
                op.identity(),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = op.identity();
                    for r in lo..hi {
                        for (c, v) in main.row_iter(r) {
                            acc = op.fold_value(
                                acc,
                                exec_cell(spec, &mut regs, v, sides, scalars, r, c),
                            );
                        }
                    }
                    acc
                },
                |a, b| op.combine(a, b),
            );
            let acc = if !op.sparse_safe() && main.nnz() < rows * cols {
                op.fold_value(acc, 0.0)
            } else {
                acc
            };
            Matrix::dense(DenseMatrix::filled(1, 1, finalize(op, acc, rows * cols)))
        }
    }
}

fn finalize(op: AggOp, acc: f64, count: usize) -> f64 {
    if op == AggOp::Mean {
        acc / count as f64
    } else {
        acc
    }
}

/// Folding that applies the aggregate's value transformation: `SumSq`
/// squares the generated value before accumulation.
trait FoldValue {
    fn fold_value(self, acc: f64, v: f64) -> f64;
}

impl FoldValue for AggOp {
    #[inline(always)]
    fn fold_value(self, acc: f64, v: f64) -> f64 {
        self.fold(acc, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::{Instr, Program};
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::BinaryOp;

    /// Builds a spec for `f(a, b0) = a * b0` with the given agg.
    fn mult_side_spec(agg: CellAgg, sparse_safe: bool) -> CellSpec {
        CellSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
                    Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                ],
                n_regs: 3,
                vreg_lens: vec![],
            },
            result: 2,
            agg,
            sparse_safe,
        }
    }

    #[test]
    fn full_agg_matches_reference() {
        let x = generate::rand_matrix(50, 40, -1.0, 1.0, 0.3, 1);
        let y = generate::rand_dense(50, 40, -1.0, 1.0, 2);
        let spec = mult_side_spec(CellAgg::FullAgg(AggOp::Sum), true);
        let out = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec),
            Some(&x),
            &[SideInput::bind(&y)],
            &[],
            50,
            40,
        );
        let expect = fusedml_linalg::ops::agg(
            &fusedml_linalg::ops::binary(&x, &y, BinaryOp::Mult),
            AggOp::Sum,
            fusedml_linalg::ops::AggDir::Full,
        );
        assert!(fusedml_linalg::approx_eq(out[0].get(0, 0), expect.get(0, 0), 1e-9));
    }

    #[test]
    fn no_agg_sparse_safe_keeps_sparse_output() {
        let x = generate::rand_matrix(100, 100, 1.0, 2.0, 0.05, 3);
        let y = generate::rand_dense(100, 100, 1.0, 2.0, 4);
        let spec = mult_side_spec(CellAgg::NoAgg, true);
        let out = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec),
            Some(&x),
            &[SideInput::bind(&y)],
            &[],
            100,
            100,
        );
        assert!(out[0].is_sparse(), "sparse-safe NoAgg keeps CSR");
        let expect = fusedml_linalg::ops::binary(&x, &y, BinaryOp::Mult);
        assert!(out[0].approx_eq(&expect, 1e-12));
    }

    #[test]
    fn row_and_col_agg_match_reference() {
        let x = generate::rand_matrix(30, 20, -1.0, 1.0, 0.4, 5);
        let y = generate::rand_dense(30, 20, -1.0, 1.0, 6);
        let prod = fusedml_linalg::ops::binary(&x, &y, BinaryOp::Mult);
        for (agg, dir) in [
            (CellAgg::RowAgg(AggOp::Sum), fusedml_linalg::ops::AggDir::Row),
            (CellAgg::ColAgg(AggOp::Sum), fusedml_linalg::ops::AggDir::Col),
        ] {
            let spec = mult_side_spec(agg, true);
            let out = crate::spoof::execute(
                &fusedml_core::spoof::FusedSpec::Cell(spec),
                Some(&x),
                &[SideInput::bind(&y)],
                &[],
                30,
                20,
            );
            let expect = fusedml_linalg::ops::agg(&prod, AggOp::Sum, dir);
            assert!(out[0].approx_eq(&expect, 1e-9), "{dir:?}");
        }
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let xd = generate::rand_matrix(40, 40, -1.0, 1.0, 0.2, 7).to_dense();
        let y = generate::rand_dense(40, 40, -1.0, 1.0, 8);
        let spec_sparse = mult_side_spec(CellAgg::FullAgg(AggOp::Sum), true);
        let spec_dense = mult_side_spec(CellAgg::FullAgg(AggOp::Sum), false);
        let sx = Matrix::sparse(SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        let a = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec_sparse),
            Some(&sx),
            &[SideInput::bind(&y)],
            &[],
            40,
            40,
        );
        let b = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec_dense),
            Some(&dx),
            &[SideInput::bind(&y)],
            &[],
            40,
            40,
        );
        assert!(fusedml_linalg::approx_eq(a[0].get(0, 0), b[0].get(0, 0), 1e-9));
    }

    #[test]
    fn min_agg_over_sparse_observes_zeros() {
        // f(a) = a (identity via a * 1): min over positive sparse values
        // must still see the implicit zeros.
        let spec = CellSpec {
            prog: Program {
                instrs: vec![Instr::LoadMain { out: 0 }],
                n_regs: 1,
                vreg_lens: vec![],
            },
            result: 0,
            agg: CellAgg::FullAgg(AggOp::Min),
            sparse_safe: true,
        };
        let x = generate::rand_matrix(50, 50, 1.0, 2.0, 0.1, 9);
        let out = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec),
            Some(&x),
            &[],
            &[],
            50,
            50,
        );
        assert_eq!(out[0].get(0, 0), 0.0);
    }
}
