//! The `SpoofCellwise` skeleton: iterates cells (or non-zeros when the
//! generated function is sparse-safe) of the main input and applies the
//! register program, with no-agg / row-agg / col-agg / full-agg variants
//! (paper Table 1, Figure 4).
//!
//! Two backends share every variant: the **block backend** (default)
//! evaluates the tile-vectorized [`fusedml_core::spoof::block`] lowering of
//! the program — amortizing instruction dispatch over whole tiles and taking
//! closure-specialized fast paths for product chains — while the **scalar
//! backend** interprets the program per cell and is retained as the
//! differential-test oracle.

use crate::side::SideInput;
use crate::spoof::tiles::{self, MainReader, TileRunner};
use fusedml_core::spoof::block::{
    fold_result, write_result, BlockProgram, CellBackend, FastKernel, OpRef, TileSrc,
};
use fusedml_core::spoof::mono::MonoKernel;
use fusedml_core::spoof::{eval_scalar_program, CellAgg, CellSpec, Reg, SideAccess};
use fusedml_linalg::ops::AggOp;
use fusedml_linalg::{par, pool, DenseMatrix, Matrix, SparseMatrix};

/// Executes a Cell operator under the owning engine's configured backend
/// (the innermost kernel scope; see the private `super::kernels` helper).
pub fn execute(
    spec: &CellSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
) -> Matrix {
    execute_with(spec, main, sides, scalars, iter_rows, iter_cols, super::kernels().backend)
}

/// Executes a Cell operator under an explicit backend (differential tests
/// pin [`CellBackend::Scalar`] as the oracle for the tile paths).
pub fn execute_with(
    spec: &CellSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
    backend: CellBackend,
) -> Matrix {
    if backend != CellBackend::Scalar {
        let caches = super::kernels();
        let kernel = caches.block.get_or_lower(&spec.prog);
        if tiles::supported(&kernel) {
            let sel = Select::new(backend, caches.tile_width);
            return match (main, spec.sparse_safe) {
                (Some(Matrix::Sparse(s)), true) => {
                    block_sparse_exec(spec, &kernel, sel, s, sides, scalars)
                }
                (m, _) => {
                    block_dense_exec(spec, &kernel, sel, m, sides, scalars, iter_rows, iter_cols)
                }
            };
        }
    }
    match (main, spec.sparse_safe) {
        (Some(Matrix::Sparse(s)), true) => sparse_safe_exec(spec, s, sides, scalars),
        (m, _) => dense_exec(spec, m, sides, scalars, iter_rows, iter_cols),
    }
}

/// `Mean` divides the fold by the number of aggregated positions; shared by
/// the dense and sparse paths of both backends.
fn finalize(op: AggOp, acc: f64, count: usize) -> f64 {
    if op == AggOp::Mean {
        acc / count as f64
    } else {
        acc
    }
}

// ===========================================================================
// Block backend
// ===========================================================================

/// Per-engine backend selection the block paths thread through: which
/// specializations may run and the configured tile width.
#[derive(Clone, Copy)]
struct Select {
    fast_ok: bool,
    mono_ok: bool,
    width: usize,
}

impl Select {
    fn new(backend: CellBackend, width: usize) -> Select {
        Select {
            fast_ok: matches!(backend, CellBackend::BlockFast | CellBackend::Mono),
            mono_ok: backend == CellBackend::Mono,
            width,
        }
    }

    /// The closure-specialized fast kernel for `r`, if enabled + available.
    fn fast<'k>(
        &self,
        kernel: &'k fusedml_core::spoof::block::BlockKernel,
        r: Reg,
    ) -> Option<&'k FastKernel> {
        if self.fast_ok {
            kernel.fast_for(r)
        } else {
            None
        }
    }

    /// The monomorphized kernel for `r`, if enabled + available.
    fn mono<'k>(
        &self,
        kernel: &'k fusedml_core::spoof::block::BlockKernel,
        r: Reg,
    ) -> Option<&'k MonoKernel> {
        if self.mono_ok {
            kernel.mono_for(r)
        } else {
            None
        }
    }
}

/// Shared per-tile fold logic: fast product chain where available, then the
/// monomorphized whole-program kernel, generic body evaluation otherwise.
struct CellFold<'k> {
    bp: &'k BlockProgram,
    result: Reg,
    fast: Option<&'k FastKernel>,
    mono: Option<&'k MonoKernel>,
    op: AggOp,
}

impl<'k> CellFold<'k> {
    #[allow(clippy::too_many_arguments)] // mirrors the skeleton calling convention
    fn dense(
        &self,
        tr: &mut TileRunner<'_, '_>,
        m: TileSrc<'_>,
        r: usize,
        c0: usize,
        n: usize,
        acc: f64,
        ptile: &mut [f64],
    ) -> f64 {
        let zero = TileSrc::Const(0.0);
        match (self.fast, self.mono) {
            (Some(fk), _) if matches!(self.op, AggOp::Sum | AggOp::Mean) => {
                tr.dense_tile(m, zero, r, c0, n, false, |ev, ctx, n| {
                    acc + tiles::factors(ev, fk, ctx, n).sum(n)
                })
            }
            (Some(fk), _) => tr.dense_tile(m, zero, r, c0, n, false, |ev, ctx, n| {
                tiles::factors(ev, fk, ctx, n).product_into(&mut ptile[..n]);
                fold_result(self.op, acc, OpRef::S(&ptile[..n]), n)
            }),
            (None, Some(mk)) => tr.dense_tile(m, zero, r, c0, n, false, |ev, ctx, n| {
                mk.fold(self.op, acc, ev, ctx, n)
            }),
            (None, None) => tr.dense_tile(m, zero, r, c0, n, true, |ev, ctx, n| {
                fold_result(self.op, acc, ev.value_of(self.bp, self.result, ctx, n), n)
            }),
        }
    }

    fn sparse(
        &self,
        tr: &mut TileRunner<'_, '_>,
        vals: &[f64],
        r: usize,
        cols: &[usize],
        acc: f64,
        ptile: &mut [f64],
    ) -> f64 {
        let (m, zero) = (TileSrc::Slice(vals), TileSrc::Const(0.0));
        match (self.fast, self.mono) {
            (Some(fk), _) if matches!(self.op, AggOp::Sum | AggOp::Mean) => {
                tr.sparse_tile(m, zero, r, cols, false, |ev, ctx, n| {
                    acc + tiles::factors(ev, fk, ctx, n).sum(n)
                })
            }
            (Some(fk), _) => tr.sparse_tile(m, zero, r, cols, false, |ev, ctx, n| {
                tiles::factors(ev, fk, ctx, n).product_into(&mut ptile[..n]);
                fold_result(self.op, acc, OpRef::S(&ptile[..n]), n)
            }),
            (None, Some(mk)) => tr.sparse_tile(m, zero, r, cols, false, |ev, ctx, n| {
                mk.fold(self.op, acc, ev, ctx, n)
            }),
            (None, None) => tr.sparse_tile(m, zero, r, cols, true, |ev, ctx, n| {
                fold_result(self.op, acc, ev.value_of(self.bp, self.result, ctx, n), n)
            }),
        }
    }
}

/// Evaluates one tile into `dst` (NoAgg outputs and scatter folds).
#[allow(clippy::too_many_arguments)] // mirrors the skeleton calling convention
fn eval_tile_into(
    tr: &mut TileRunner<'_, '_>,
    bp: &BlockProgram,
    result: Reg,
    fast: Option<&FastKernel>,
    mono: Option<&MonoKernel>,
    m: TileSrc<'_>,
    r: usize,
    pos: TilePos<'_>,
    dst: &mut [f64],
) {
    let zero = TileSrc::Const(0.0);
    match (fast, mono, pos) {
        (Some(fk), _, TilePos::Dense(c0)) => {
            tr.dense_tile(m, zero, r, c0, dst.len(), false, |ev, ctx, n| {
                tiles::factors(ev, fk, ctx, n).product_into(dst)
            })
        }
        (None, Some(mk), TilePos::Dense(c0)) => {
            tr.dense_tile(m, zero, r, c0, dst.len(), false, |ev, ctx, n| {
                mk.map_into(ev, ctx, n, dst)
            })
        }
        (None, None, TilePos::Dense(c0)) => {
            tr.dense_tile(m, zero, r, c0, dst.len(), true, |ev, ctx, n| {
                write_result(ev.value_of(bp, result, ctx, n), dst)
            })
        }
        (Some(fk), _, TilePos::Sparse(cols)) => {
            tr.sparse_tile(m, zero, r, cols, false, |ev, ctx, n| {
                tiles::factors(ev, fk, ctx, n).product_into(dst)
            })
        }
        (None, Some(mk), TilePos::Sparse(cols)) => {
            tr.sparse_tile(m, zero, r, cols, false, |ev, ctx, n| mk.map_into(ev, ctx, n, dst))
        }
        (None, None, TilePos::Sparse(cols)) => {
            tr.sparse_tile(m, zero, r, cols, true, |ev, ctx, n| {
                write_result(ev.value_of(bp, result, ctx, n), dst)
            })
        }
    }
}

/// Tile position: a dense column offset or scattered column indices.
#[derive(Clone, Copy)]
enum TilePos<'a> {
    Dense(usize),
    Sparse(&'a [usize]),
}

#[allow(clippy::too_many_arguments)]
fn block_dense_exec(
    spec: &CellSpec,
    kernel: &fusedml_core::spoof::block::BlockKernel,
    sel: Select,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    rows: usize,
    cols: usize,
) -> Matrix {
    let width = sel.width;
    let fast = sel.fast(kernel, spec.result);
    let mono = sel.mono(kernel, spec.result);
    let bp = &kernel.block;
    match spec.agg {
        CellAgg::NoAgg => {
            let mut out = pool::take_zeroed(rows * cols);
            par::par_row_bands_mut(&mut out, rows, cols.max(1), cols.max(1) * 4, |r0, band| {
                let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                let mut mr = MainReader::new(main, cols);
                for (i, orow) in band.chunks_exact_mut(cols.max(1)).enumerate() {
                    let r = r0 + i;
                    tr.begin_row_dense(r);
                    let row_src = mr.row(r);
                    let mut c0 = 0;
                    while c0 < cols {
                        let n = width.min(cols - c0);
                        let m = tiles::sub_tile(row_src, c0, n);
                        let dst = &mut orow[c0..c0 + n];
                        eval_tile_into(
                            &mut tr,
                            bp,
                            spec.result,
                            fast,
                            mono,
                            m,
                            r,
                            TilePos::Dense(c0),
                            dst,
                        );
                        c0 += n;
                    }
                }
            });
            Matrix::dense(DenseMatrix::new(rows, cols, out))
        }
        CellAgg::RowAgg(op) => {
            let fold = CellFold { bp, result: spec.result, fast, mono, op };
            let mut out = pool::take_zeroed(rows);
            par::par_row_bands_mut(&mut out, rows, 1, cols.max(1) * 4, |r0, band| {
                let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                let mut mr = MainReader::new(main, cols);
                let mut ptile = vec![0.0f64; width];
                for (i, slot) in band.iter_mut().enumerate() {
                    let r = r0 + i;
                    tr.begin_row_dense(r);
                    let row_src = mr.row(r);
                    let mut acc = op.identity();
                    let mut c0 = 0;
                    while c0 < cols {
                        let n = width.min(cols - c0);
                        let m = tiles::sub_tile(row_src, c0, n);
                        acc = fold.dense(&mut tr, m, r, c0, n, acc, &mut ptile);
                        c0 += n;
                    }
                    *slot = finalize(op, acc, cols);
                }
            });
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        CellAgg::ColAgg(op) => {
            let mut acc = par::par_map_reduce(
                rows,
                cols.max(1) * 4,
                vec![op.identity(); cols],
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                    let mut mr = MainReader::new(main, cols);
                    let mut ptile = vec![0.0f64; width];
                    let mut acc = vec![op.identity(); cols];
                    for r in lo..hi {
                        tr.begin_row_dense(r);
                        let row_src = mr.row(r);
                        let mut c0 = 0;
                        while c0 < cols {
                            let n = width.min(cols - c0);
                            let m = tiles::sub_tile(row_src, c0, n);
                            eval_tile_into(
                                &mut tr,
                                bp,
                                spec.result,
                                fast,
                                mono,
                                m,
                                r,
                                TilePos::Dense(c0),
                                &mut ptile[..n],
                            );
                            tiles::fold_cols(op, &mut acc[c0..c0 + n], OpRef::S(&ptile[..n]));
                            c0 += n;
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x = op.combine(*x, y);
                    }
                    a
                },
            );
            for slot in acc.iter_mut() {
                *slot = finalize(op, *slot, rows);
            }
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
        CellAgg::FullAgg(op) => {
            let fold = CellFold { bp, result: spec.result, fast, mono, op };
            let acc = par::par_map_reduce(
                rows,
                cols.max(1) * 4,
                op.identity(),
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                    let mut mr = MainReader::new(main, cols);
                    let mut ptile = vec![0.0f64; width];
                    let mut acc = op.identity();
                    for r in lo..hi {
                        tr.begin_row_dense(r);
                        let row_src = mr.row(r);
                        let mut c0 = 0;
                        while c0 < cols {
                            let n = width.min(cols - c0);
                            let m = tiles::sub_tile(row_src, c0, n);
                            acc = fold.dense(&mut tr, m, r, c0, n, acc, &mut ptile);
                            c0 += n;
                        }
                    }
                    acc
                },
                |a, b| op.combine(a, b),
            );
            Matrix::dense(DenseMatrix::filled(1, 1, finalize(op, acc, rows * cols)))
        }
    }
}

fn block_sparse_exec(
    spec: &CellSpec,
    kernel: &fusedml_core::spoof::block::BlockKernel,
    sel: Select,
    main: &SparseMatrix,
    sides: &[SideInput],
    scalars: &[f64],
) -> Matrix {
    let (rows, cols) = (main.rows(), main.cols());
    let width = sel.width;
    let fast = sel.fast(kernel, spec.result);
    let mono = sel.mono(kernel, spec.result);
    let bp = &kernel.block;
    let work = (main.nnz() / rows.max(1)).max(1) * 4;
    match spec.agg {
        CellAgg::NoAgg => {
            let triples = par::par_map_reduce(
                rows,
                work,
                Vec::new(),
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                    let mut ptile = vec![0.0f64; width];
                    let mut triples = Vec::new();
                    for r in lo..hi {
                        tr.begin_row_sparse(r);
                        for (vchunk, cchunk) in
                            main.row_values(r).chunks(width).zip(main.row_cols(r).chunks(width))
                        {
                            let n = cchunk.len();
                            eval_tile_into(
                                &mut tr,
                                bp,
                                spec.result,
                                fast,
                                mono,
                                TileSrc::Slice(vchunk),
                                r,
                                TilePos::Sparse(cchunk),
                                &mut ptile[..n],
                            );
                            for (i, &c) in cchunk.iter().enumerate() {
                                if ptile[i] != 0.0 {
                                    triples.push((r, c, ptile[i]));
                                }
                            }
                        }
                    }
                    triples
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            Matrix::sparse(SparseMatrix::from_triples(rows, cols, triples))
        }
        CellAgg::RowAgg(op) => {
            let fold = CellFold { bp, result: spec.result, fast, mono, op };
            let mut out = pool::take_zeroed(rows);
            par::par_row_bands_mut(&mut out, rows, 1, work, |r0, band| {
                let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                let mut ptile = vec![0.0f64; width];
                for (i, slot) in band.iter_mut().enumerate() {
                    let r = r0 + i;
                    tr.begin_row_sparse(r);
                    let mut acc = op.identity();
                    for (vchunk, cchunk) in
                        main.row_values(r).chunks(width).zip(main.row_cols(r).chunks(width))
                    {
                        acc = fold.sparse(&mut tr, vchunk, r, cchunk, acc, &mut ptile);
                    }
                    if !op.sparse_safe() && main.row_nnz(r) < cols {
                        acc = op.fold(acc, 0.0);
                    }
                    *slot = finalize(op, acc, cols);
                }
            });
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        CellAgg::ColAgg(op) => {
            let (mut acc, counts) = par::par_map_reduce(
                rows,
                work,
                (vec![op.identity(); cols], vec![0usize; cols]),
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                    let mut ptile = vec![0.0f64; width];
                    let mut acc = vec![op.identity(); cols];
                    let mut counts = vec![0usize; cols];
                    for r in lo..hi {
                        tr.begin_row_sparse(r);
                        for (vchunk, cchunk) in
                            main.row_values(r).chunks(width).zip(main.row_cols(r).chunks(width))
                        {
                            let n = cchunk.len();
                            eval_tile_into(
                                &mut tr,
                                bp,
                                spec.result,
                                fast,
                                mono,
                                TileSrc::Slice(vchunk),
                                r,
                                TilePos::Sparse(cchunk),
                                &mut ptile[..n],
                            );
                            for (i, &c) in cchunk.iter().enumerate() {
                                acc[c] = op.fold(acc[c], ptile[i]);
                                counts[c] += 1;
                            }
                        }
                    }
                    (acc, counts)
                },
                |(mut a, mut ca), (b, cb)| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x = op.combine(*x, y);
                    }
                    for (x, y) in ca.iter_mut().zip(cb) {
                        *x += y;
                    }
                    (a, ca)
                },
            );
            for c in 0..cols {
                if !op.sparse_safe() && counts[c] < rows {
                    acc[c] = op.fold(acc[c], 0.0);
                }
                acc[c] = finalize(op, acc[c], rows);
            }
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
        CellAgg::FullAgg(op) => {
            let fold = CellFold { bp, result: spec.result, fast, mono, op };
            let acc = par::par_map_reduce(
                rows,
                work,
                op.identity(),
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
                    let mut ptile = vec![0.0f64; width];
                    let mut acc = op.identity();
                    for r in lo..hi {
                        tr.begin_row_sparse(r);
                        for (vchunk, cchunk) in
                            main.row_values(r).chunks(width).zip(main.row_cols(r).chunks(width))
                        {
                            acc = fold.sparse(&mut tr, vchunk, r, cchunk, acc, &mut ptile);
                        }
                    }
                    acc
                },
                |a, b| op.combine(a, b),
            );
            let acc =
                if !op.sparse_safe() && main.nnz() < rows * cols { op.fold(acc, 0.0) } else { acc };
            Matrix::dense(DenseMatrix::filled(1, 1, finalize(op, acc, rows * cols)))
        }
    }
}

// ===========================================================================
// Scalar backend (the differential-test oracle)
// ===========================================================================

/// Evaluates the program for one (rix, cix) position.
#[inline]
fn exec_cell(
    spec: &CellSpec,
    regs: &mut [f64],
    a: f64,
    sides: &[SideInput],
    scalars: &[f64],
    rix: usize,
    cix: usize,
) -> f64 {
    let side_at = |i: usize, acc: SideAccess| sides[i].value_at(acc, rix, cix);
    eval_scalar_program(&spec.prog, regs, a, 0.0, &side_at, scalars);
    regs[spec.result as usize]
}

fn dense_exec(
    spec: &CellSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    rows: usize,
    cols: usize,
) -> Matrix {
    let main_get = |r: usize, c: usize| main.map_or(0.0, |m| m.get(r, c));
    match spec.agg {
        CellAgg::NoAgg => {
            let mut out = pool::take_zeroed(rows * cols);
            par::par_rows_mut(&mut out, rows, cols.max(1), cols.max(1) * 4, |r, orow| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                for (c, slot) in orow.iter_mut().enumerate() {
                    *slot = exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c);
                }
            });
            Matrix::dense(DenseMatrix::new(rows, cols, out))
        }
        CellAgg::RowAgg(op) => {
            let mut out = pool::take_zeroed(rows);
            par::par_rows_mut(&mut out, rows, 1, cols.max(1) * 4, |r, slot| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                let mut acc = op.identity();
                for c in 0..cols {
                    acc = op.fold(
                        acc,
                        exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c),
                    );
                }
                slot[0] = finalize(op, acc, cols);
            });
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        CellAgg::ColAgg(op) => {
            let mut acc = par::par_map_reduce(
                rows,
                cols.max(1) * 4,
                vec![op.identity(); cols],
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = vec![op.identity(); cols];
                    for r in lo..hi {
                        for (c, slot) in acc.iter_mut().enumerate() {
                            *slot = op.fold(
                                *slot,
                                exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c),
                            );
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x = op.combine(*x, y);
                    }
                    a
                },
            );
            for slot in acc.iter_mut() {
                *slot = finalize(op, *slot, rows);
            }
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
        CellAgg::FullAgg(op) => {
            let acc = par::par_map_reduce(
                rows,
                cols.max(1) * 4,
                op.identity(),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = op.identity();
                    for r in lo..hi {
                        for c in 0..cols {
                            acc = op.fold(
                                acc,
                                exec_cell(spec, &mut regs, main_get(r, c), sides, scalars, r, c),
                            );
                        }
                    }
                    acc
                },
                |a, b| op.combine(a, b),
            );
            Matrix::dense(DenseMatrix::filled(1, 1, finalize(op, acc, rows * cols)))
        }
    }
}

/// Sparse-safe execution over non-zeros only (scalar backend). All variants
/// parallelize over row ranges via the `linalg::par` helpers.
fn sparse_safe_exec(
    spec: &CellSpec,
    main: &SparseMatrix,
    sides: &[SideInput],
    scalars: &[f64],
) -> Matrix {
    let (rows, cols) = (main.rows(), main.cols());
    let work = (main.nnz() / rows.max(1)).max(1) * 4;
    match spec.agg {
        CellAgg::NoAgg => {
            let triples = par::par_map_reduce(
                rows,
                work,
                Vec::new(),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut triples = Vec::new();
                    for r in lo..hi {
                        for (c, v) in main.row_iter(r) {
                            let out = exec_cell(spec, &mut regs, v, sides, scalars, r, c);
                            if out != 0.0 {
                                triples.push((r, c, out));
                            }
                        }
                    }
                    triples
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            Matrix::sparse(SparseMatrix::from_triples(rows, cols, triples))
        }
        CellAgg::RowAgg(op) => {
            let mut out = pool::take_zeroed(rows);
            par::par_rows_mut(&mut out, rows, 1, work, |r, slot| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                let mut acc = op.identity();
                for (c, v) in main.row_iter(r) {
                    acc = op.fold(acc, exec_cell(spec, &mut regs, v, sides, scalars, r, c));
                }
                // Pseudo-sparse-safe aggregation: min/max must still observe
                // the implicit zeros (which map to zero under sparse-safety).
                if !op.sparse_safe() && main.row_nnz(r) < cols {
                    acc = op.fold(acc, 0.0);
                }
                slot[0] = finalize(op, acc, cols);
            });
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        CellAgg::ColAgg(op) => {
            let (mut acc, counts) = par::par_map_reduce(
                rows,
                work,
                (vec![op.identity(); cols], vec![0usize; cols]),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = vec![op.identity(); cols];
                    let mut counts = vec![0usize; cols];
                    for r in lo..hi {
                        for (c, v) in main.row_iter(r) {
                            acc[c] = op
                                .fold(acc[c], exec_cell(spec, &mut regs, v, sides, scalars, r, c));
                            counts[c] += 1;
                        }
                    }
                    (acc, counts)
                },
                |(mut a, mut ca), (b, cb)| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x = op.combine(*x, y);
                    }
                    for (x, y) in ca.iter_mut().zip(cb) {
                        *x += y;
                    }
                    (a, ca)
                },
            );
            for c in 0..cols {
                if !op.sparse_safe() && counts[c] < rows {
                    acc[c] = op.fold(acc[c], 0.0);
                }
                acc[c] = finalize(op, acc[c], rows);
            }
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
        CellAgg::FullAgg(op) => {
            let acc = par::par_map_reduce(
                rows,
                work,
                op.identity(),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = op.identity();
                    for r in lo..hi {
                        for (c, v) in main.row_iter(r) {
                            acc = op.fold(acc, exec_cell(spec, &mut regs, v, sides, scalars, r, c));
                        }
                    }
                    acc
                },
                |a, b| op.combine(a, b),
            );
            let acc =
                if !op.sparse_safe() && main.nnz() < rows * cols { op.fold(acc, 0.0) } else { acc };
            Matrix::dense(DenseMatrix::filled(1, 1, finalize(op, acc, rows * cols)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::{Instr, Program};
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::BinaryOp;

    /// Builds a spec for `f(a, b0) = a * b0` with the given agg.
    fn mult_side_spec(agg: CellAgg, sparse_safe: bool) -> CellSpec {
        CellSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
                    Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                ],
                n_regs: 3,
                vreg_lens: vec![],
            },
            result: 2,
            agg,
            sparse_safe,
        }
    }

    #[test]
    fn full_agg_matches_reference() {
        let x = generate::rand_matrix(50, 40, -1.0, 1.0, 0.3, 1);
        let y = generate::rand_dense(50, 40, -1.0, 1.0, 2);
        let spec = mult_side_spec(CellAgg::FullAgg(AggOp::Sum), true);
        let out = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec),
            Some(&x),
            &[SideInput::bind(&y)],
            &[],
            50,
            40,
        );
        let expect = fusedml_linalg::ops::agg(
            &fusedml_linalg::ops::binary(&x, &y, BinaryOp::Mult),
            AggOp::Sum,
            fusedml_linalg::ops::AggDir::Full,
        );
        assert!(fusedml_linalg::approx_eq(out[0].get(0, 0), expect.get(0, 0), 1e-9));
    }

    #[test]
    fn no_agg_sparse_safe_keeps_sparse_output() {
        let x = generate::rand_matrix(100, 100, 1.0, 2.0, 0.05, 3);
        let y = generate::rand_dense(100, 100, 1.0, 2.0, 4);
        let spec = mult_side_spec(CellAgg::NoAgg, true);
        let out = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec),
            Some(&x),
            &[SideInput::bind(&y)],
            &[],
            100,
            100,
        );
        assert!(out[0].is_sparse(), "sparse-safe NoAgg keeps CSR");
        let expect = fusedml_linalg::ops::binary(&x, &y, BinaryOp::Mult);
        assert!(out[0].approx_eq(&expect, 1e-12));
    }

    #[test]
    fn row_and_col_agg_match_reference() {
        let x = generate::rand_matrix(30, 20, -1.0, 1.0, 0.4, 5);
        let y = generate::rand_dense(30, 20, -1.0, 1.0, 6);
        let prod = fusedml_linalg::ops::binary(&x, &y, BinaryOp::Mult);
        for (agg, dir) in [
            (CellAgg::RowAgg(AggOp::Sum), fusedml_linalg::ops::AggDir::Row),
            (CellAgg::ColAgg(AggOp::Sum), fusedml_linalg::ops::AggDir::Col),
        ] {
            let spec = mult_side_spec(agg, true);
            let out = crate::spoof::execute(
                &fusedml_core::spoof::FusedSpec::Cell(spec),
                Some(&x),
                &[SideInput::bind(&y)],
                &[],
                30,
                20,
            );
            let expect = fusedml_linalg::ops::agg(&prod, AggOp::Sum, dir);
            assert!(out[0].approx_eq(&expect, 1e-9), "{dir:?}");
        }
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let xd = generate::rand_matrix(40, 40, -1.0, 1.0, 0.2, 7).to_dense();
        let y = generate::rand_dense(40, 40, -1.0, 1.0, 8);
        let spec_sparse = mult_side_spec(CellAgg::FullAgg(AggOp::Sum), true);
        let spec_dense = mult_side_spec(CellAgg::FullAgg(AggOp::Sum), false);
        let sx = Matrix::sparse(SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        let a = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec_sparse),
            Some(&sx),
            &[SideInput::bind(&y)],
            &[],
            40,
            40,
        );
        let b = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec_dense),
            Some(&dx),
            &[SideInput::bind(&y)],
            &[],
            40,
            40,
        );
        assert!(fusedml_linalg::approx_eq(a[0].get(0, 0), b[0].get(0, 0), 1e-9));
    }

    #[test]
    fn min_agg_over_sparse_observes_zeros() {
        // f(a) = a (identity via a * 1): min over positive sparse values
        // must still see the implicit zeros.
        let spec = CellSpec {
            prog: Program {
                instrs: vec![Instr::LoadMain { out: 0 }],
                n_regs: 1,
                vreg_lens: vec![],
            },
            result: 0,
            agg: CellAgg::FullAgg(AggOp::Min),
            sparse_safe: true,
        };
        let x = generate::rand_matrix(50, 50, 1.0, 2.0, 0.1, 9);
        let out = crate::spoof::execute(
            &fusedml_core::spoof::FusedSpec::Cell(spec),
            Some(&x),
            &[],
            &[],
            50,
            50,
        );
        assert_eq!(out[0].get(0, 0), 0.0);
    }

    /// Regression for the dense/sparse `Mean` finalization asymmetry: the
    /// dense path must divide by the aggregated count exactly like the
    /// sparse-safe path always did.
    #[test]
    fn mean_agg_finalizes_on_dense_inputs() {
        let (rows, cols) = (37, 23);
        let x = generate::rand_dense(rows, cols, 0.5, 1.5, 10);
        let y = generate::rand_dense(rows, cols, 0.5, 1.5, 11);
        let prod = fusedml_linalg::ops::binary(&x, &y, BinaryOp::Mult);
        for backend in [CellBackend::Scalar, CellBackend::Block, CellBackend::BlockFast] {
            for (agg, dir, count) in [
                (CellAgg::FullAgg(AggOp::Mean), fusedml_linalg::ops::AggDir::Full, rows * cols),
                (CellAgg::RowAgg(AggOp::Mean), fusedml_linalg::ops::AggDir::Row, cols),
                (CellAgg::ColAgg(AggOp::Mean), fusedml_linalg::ops::AggDir::Col, rows),
            ] {
                let spec = mult_side_spec(agg, true);
                let out =
                    execute_with(&spec, Some(&x), &[SideInput::bind(&y)], &[], rows, cols, backend);
                let sums = fusedml_linalg::ops::agg(&prod, AggOp::Sum, dir);
                for r in 0..out.rows() {
                    for c in 0..out.cols() {
                        let expect = sums.get(r, c) / count as f64;
                        assert!(
                            fusedml_linalg::approx_eq(out.get(r, c), expect, 1e-9),
                            "{backend:?} {dir:?} ({r},{c}): {} vs {expect}",
                            out.get(r, c)
                        );
                    }
                }
            }
        }
    }

    /// The block backends must agree with the scalar oracle across all agg
    /// variants, dense and sparse mains, and ragged (non-tile-multiple)
    /// shapes.
    #[test]
    fn block_backends_match_scalar_oracle() {
        let (rows, cols) = (45, 300); // cols not a multiple of the tile width
        let xd = generate::rand_matrix(rows, cols, -1.0, 1.0, 0.3, 12).to_dense();
        let y = generate::rand_dense(rows, cols, -1.0, 1.0, 13);
        let sx = Matrix::sparse(SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        for agg in [
            CellAgg::NoAgg,
            CellAgg::RowAgg(AggOp::Sum),
            CellAgg::ColAgg(AggOp::Max),
            CellAgg::FullAgg(AggOp::SumSq),
            CellAgg::FullAgg(AggOp::Mean),
        ] {
            let spec = mult_side_spec(agg, true);
            for main in [&dx, &sx] {
                let sides = [SideInput::bind(&y)];
                let oracle =
                    execute_with(&spec, Some(main), &sides, &[], rows, cols, CellBackend::Scalar);
                for backend in [CellBackend::Block, CellBackend::BlockFast] {
                    let out = execute_with(&spec, Some(main), &sides, &[], rows, cols, backend);
                    assert!(
                        out.approx_eq(&oracle, 1e-12),
                        "{agg:?} {backend:?} sparse={}",
                        main.is_sparse()
                    );
                }
            }
        }
    }
}
