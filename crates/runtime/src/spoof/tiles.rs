//! Tile gathering for the block backend: resolves each of a
//! [`fusedml_core::spoof::block::BlockProgram`]'s side gathers into per-tile slices — zero-copy for
//! dense sides under dense iteration, densified-row or scatter-gather
//! scratch otherwise — and drives the tile evaluator.
//!
//! The skeletons own iteration order (dense row ranges or CSR non-zero
//! batches) and aggregation; this module owns everything between "here is a
//! tile worth of positions" and "here is the evaluated result tile".

use crate::side::SideInput;
use fusedml_linalg::pool;
use fusedml_linalg::simd;

use fusedml_core::spoof::block::{
    BlockEval, BlockKernel, Factors, FastKernel, OpRef, Opnd, TileCtx, TileSrc,
};
use fusedml_core::spoof::SideAccess;

/// Maximum distinct `(side, access)` gathers the tile path supports; kernels
/// beyond this fall back to the scalar interpreter.
pub const MAX_GATHERS: usize = 16;

/// True if the kernel's gather list fits the tile path.
pub fn supported(kernel: &BlockKernel) -> bool {
    kernel.block.gathers.len() <= MAX_GATHERS
}

/// Narrows a row-spanning tile source to one tile.
#[inline]
pub fn sub_tile<'a>(src: TileSrc<'a>, c0: usize, n: usize) -> TileSrc<'a> {
    match src {
        TileSrc::Slice(s) => TileSrc::Slice(&s[c0..c0 + n]),
        TileSrc::Const(c) => TileSrc::Const(c),
    }
}

/// Reads main-input rows for dense (full row-range) iteration, densifying
/// sparse rows into scratch.
pub struct MainReader<'a> {
    m: Option<&'a fusedml_linalg::Matrix>,
    scratch: Vec<f64>,
}

impl Drop for MainReader<'_> {
    fn drop(&mut self) {
        pool::give(std::mem::take(&mut self.scratch));
    }
}

impl<'a> MainReader<'a> {
    pub fn new(m: Option<&'a fusedml_linalg::Matrix>, cols: usize) -> Self {
        let scratch = match m {
            Some(fusedml_linalg::Matrix::Sparse(_)) => pool::take_zeroed(cols),
            _ => Vec::new(),
        };
        MainReader { m, scratch }
    }

    /// The whole main row as a tile source (slice with `sub_tile`).
    pub fn row(&mut self, r: usize) -> TileSrc<'_> {
        match self.m {
            Some(fusedml_linalg::Matrix::Dense(d)) => TileSrc::Slice(d.row(r)),
            Some(fusedml_linalg::Matrix::Sparse(s)) => {
                self.scratch.fill(0.0);
                for (c, v) in s.row_iter(r) {
                    self.scratch[c] = v;
                }
                TileSrc::Slice(&self.scratch)
            }
            None => TileSrc::Const(0.0),
        }
    }
}

/// Per-thread tile-execution state: the evaluator register files plus
/// per-gather-slot scratch.
pub struct TileRunner<'k, 's> {
    pub kernel: &'k BlockKernel,
    pub eval: BlockEval,
    sides: &'s [SideInput],
    /// Densified side rows (sparse sides under dense iteration; row 0 of
    /// sparse `Row`-access sides, filled once).
    row_bufs: Vec<Vec<f64>>,
    /// Scatter-gather scratch (sparse-main iteration), tile-width sized.
    scatter_bufs: Vec<Vec<f64>>,
    width: usize,
}

impl Drop for TileRunner<'_, '_> {
    fn drop(&mut self) {
        for buf in self.row_bufs.drain(..).chain(self.scatter_bufs.drain(..)) {
            pool::give(buf);
        }
    }
}

impl<'k, 's> TileRunner<'k, 's> {
    /// Builds a runner and runs the invocation-invariant prologue.
    /// `iter_cols` sizes the densified-row scratch for dense iteration.
    pub fn new(
        kernel: &'k BlockKernel,
        sides: &'s [SideInput],
        scalars: &[f64],
        iter_cols: usize,
        width: usize,
    ) -> Self {
        let bp = &kernel.block;
        assert!(bp.gathers.len() <= MAX_GATHERS, "gather count exceeds tile path");
        let mut eval = BlockEval::new(bp, width);
        eval.set_invariants(bp, &|i, acc| sides[i].value_at(acc, 0, 0), scalars);
        let mut row_bufs = vec![Vec::new(); bp.gathers.len()];
        let mut scatter_bufs = vec![Vec::new(); bp.gathers.len()];
        for (slot, &(side, access)) in bp.gathers.iter().enumerate() {
            if matches!(sides[side], SideInput::Sparse(_)) {
                let mut buf = pool::take_zeroed(iter_cols);
                if access == SideAccess::Row {
                    // Row access reads row 0 everywhere: densify once.
                    sides[side].read_row_into(0, 0, iter_cols, &mut buf);
                }
                row_bufs[slot] = buf;
            }
            scatter_bufs[slot] = pool::take_zeroed(width);
        }
        TileRunner { kernel, eval, sides, row_bufs, scatter_bufs, width }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    /// Per-row prologue for dense iteration: runs the row-uniform program
    /// and densifies sparse `Cell`-access side rows.
    pub fn begin_row_dense(&mut self, r: usize) {
        let bp = &self.kernel.block;
        self.eval.begin_row(bp, &|i, acc| self.sides[i].value_at(acc, r, 0));
        for (slot, &(side, access)) in bp.gathers.iter().enumerate() {
            if access == SideAccess::Cell {
                if let SideInput::Sparse(s) = &self.sides[side] {
                    let buf = &mut self.row_bufs[slot];
                    buf.fill(0.0);
                    for (c, v) in s.row_iter(r) {
                        buf[c] = v;
                    }
                }
            }
        }
    }

    /// Per-row prologue for sparse (non-zero-batched) iteration: only the
    /// row-uniform program runs; gathers happen per batch.
    pub fn begin_row_sparse(&mut self, r: usize) {
        let bp = &self.kernel.block;
        self.eval.begin_row(bp, &|i, acc| self.sides[i].value_at(acc, r, 0));
    }

    /// Gathers side tiles for columns `[c0, c0+n)` of row `r`, optionally
    /// evaluates the body, and hands the evaluator + context to `f`.
    #[allow(clippy::too_many_arguments)] // mirrors the skeleton calling convention
    pub fn dense_tile<R>(
        &mut self,
        main: TileSrc<'_>,
        uv: TileSrc<'_>,
        r: usize,
        c0: usize,
        n: usize,
        run_body: bool,
        f: impl FnOnce(&BlockEval, &TileCtx<'_>, usize) -> R,
    ) -> R {
        let bp = &self.kernel.block;
        let mut g = [TileSrc::Const(0.0); MAX_GATHERS];
        for (slot, &(side, access)) in bp.gathers.iter().enumerate() {
            g[slot] = match (&self.sides[side], access) {
                (SideInput::Dense(d), SideAccess::Cell) => TileSrc::Slice(&d.row(r)[c0..c0 + n]),
                (SideInput::Dense(d), SideAccess::Row) => TileSrc::Slice(&d.row(0)[c0..c0 + n]),
                (SideInput::Sparse(_), SideAccess::Cell | SideAccess::Row) => {
                    TileSrc::Slice(&self.row_bufs[slot][c0..c0 + n])
                }
                _ => unreachable!("Col/Scalar accesses are hoisted out of gathers"),
            };
        }
        let ctx = TileCtx { main, uv, gathers: &g[..bp.gathers.len()] };
        if run_body {
            self.eval.eval_body(bp, &ctx, n);
        }
        f(&self.eval, &ctx, n)
    }

    /// Gathers side tiles at the scattered column indices `cols` of row `r`
    /// (non-zero batching), optionally evaluates, and hands off to `f`.
    pub fn sparse_tile<R>(
        &mut self,
        main: TileSrc<'_>,
        uv: TileSrc<'_>,
        r: usize,
        cols: &[usize],
        run_body: bool,
        f: impl FnOnce(&BlockEval, &TileCtx<'_>, usize) -> R,
    ) -> R {
        let bp = &self.kernel.block;
        let n = cols.len();
        debug_assert!(n <= self.width);
        for (slot, &(side, access)) in bp.gathers.iter().enumerate() {
            let buf = &mut self.scatter_bufs[slot];
            match (&self.sides[side], access) {
                (SideInput::Dense(d), SideAccess::Cell) => {
                    simd::gather_into(&mut buf[..n], d.row(r), cols);
                }
                (SideInput::Dense(d), SideAccess::Row) => {
                    simd::gather_into(&mut buf[..n], d.row(0), cols);
                }
                (SideInput::Sparse(s), SideAccess::Cell) => {
                    for (b, &c) in buf[..n].iter_mut().zip(cols) {
                        *b = s.get(r, c);
                    }
                }
                (SideInput::Sparse(s), SideAccess::Row) => {
                    for (b, &c) in buf[..n].iter_mut().zip(cols) {
                        *b = s.get(0, c);
                    }
                }
                _ => unreachable!("Col/Scalar accesses are hoisted out of gathers"),
            }
        }
        let mut g = [TileSrc::Const(0.0); MAX_GATHERS];
        for (slot, buf) in self.scatter_bufs[..bp.gathers.len()].iter().enumerate() {
            g[slot] = TileSrc::Slice(&buf[..n]);
        }
        let ctx = TileCtx { main, uv, gathers: &g[..bp.gathers.len()] };
        if run_body {
            self.eval.eval_body(bp, &ctx, n);
        }
        f(&self.eval, &ctx, n)
    }
}

/// Resolves a product-chain fast kernel's factors for the current tile.
pub fn factors<'a>(ev: &'a BlockEval, fk: &FastKernel, ctx: &TileCtx<'a>, n: usize) -> Factors<'a> {
    let FastKernel::ProductChain { mains, slots } = fk;
    let refs = std::iter::repeat_n(Opnd::Main, *mains as usize)
        .chain(slots.iter().map(|&s| Opnd::Gather(s)))
        .map(|o| ev.opnd(o, ctx, n));
    Factors::from_refs(refs).expect("specialize caps chains at four factors")
}

/// Folds an evaluated tile result into a per-column accumulator slice
/// (dense column aggregation).
#[inline]
pub fn fold_cols(op: fusedml_linalg::ops::AggOp, acc: &mut [f64], r: OpRef<'_>) {
    match r {
        OpRef::S(s) => {
            for (a, &v) in acc.iter_mut().zip(s) {
                *a = op.fold(*a, v);
            }
        }
        OpRef::C(c) => {
            for a in acc.iter_mut() {
                *a = op.fold(*a, c);
            }
        }
    }
}
