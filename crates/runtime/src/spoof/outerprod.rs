//! The `SpoofOuterProduct` skeleton: iterates the non-zero cells of the
//! main input `X` (or all cells for dense mains), computes the built-in
//! `dot(U[i,:], V[j,:])` per cell, evaluates the scalar program, and applies
//! the output variant: full aggregation, left/right matrix multiply, or
//! no-agg (paper Figure 3(a): the ALS-CG update rule).

use crate::side::SideInput;
use crate::spoof::tiles::{self, MainReader, TileRunner};
use fusedml_core::spoof::block::{fold_result, write_result, CellBackend, OpRef, TileSrc};
use fusedml_core::spoof::mono::MonoKernel;
use fusedml_core::spoof::{eval_scalar_program, OuterOut, OuterSpec, SideAccess};
use fusedml_linalg::ops::AggOp;
use fusedml_linalg::{par, pool, primitives as prim, DenseMatrix, Matrix, SparseMatrix};

/// Executes an Outer operator under the globally selected backend.
pub fn execute(
    spec: &OuterSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
) -> Matrix {
    execute_with(spec, main, sides, scalars, iter_rows, iter_cols, super::kernels().backend)
}

/// Executes under an explicit backend (differential tests pin `Scalar`).
pub fn execute_with(
    spec: &OuterSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
    backend: CellBackend,
) -> Matrix {
    // U and V are dense row-major factor matrices.
    let u = sides[spec.u_side].to_dense_values().into_owned();
    let v = sides[spec.v_side].to_dense_values().into_owned();
    let r = spec.rank;

    if backend != CellBackend::Scalar {
        let kernel = super::kernels().block.get_or_lower(&spec.prog);
        if tiles::supported(&kernel) {
            return match main {
                Some(Matrix::Sparse(s)) if spec.sparse_safe => {
                    block_sparse_exec(spec, &kernel, s, &u, &v, r, sides, scalars, backend)
                }
                _ => block_dense_exec(
                    spec, &kernel, main, &u, &v, r, sides, scalars, iter_rows, iter_cols, backend,
                ),
            };
        }
    }
    match main {
        Some(Matrix::Sparse(s)) if spec.sparse_safe => {
            sparse_exec(spec, s, &u, &v, r, sides, scalars)
        }
        _ => dense_exec(spec, main, &u, &v, r, sides, scalars, iter_rows, iter_cols),
    }
}

// ===========================================================================
// Block backend: the skeleton batches `dot(U[i,:], V[j,:])` into a uv tile,
// evaluates the program body tile-at-a-time, and scatters/folds per variant.
// ===========================================================================

/// Fills `buf[t] = dot(U[i,:], V[j_t,:])` for a dense column range.
#[inline]
fn uv_tile_dense(u: &[f64], v: &[f64], rank: usize, i: usize, c0: usize, buf: &mut [f64]) {
    let urow = &u[i * rank..(i + 1) * rank];
    for (t, slot) in buf.iter_mut().enumerate() {
        *slot = prim::dot_product(urow, v, 0, (c0 + t) * rank, rank);
    }
}

/// Fills `buf[t] = dot(U[i,:], V[cols[t],:])` for scattered columns.
#[inline]
fn uv_tile_sparse(u: &[f64], v: &[f64], rank: usize, i: usize, cols: &[usize], buf: &mut [f64]) {
    let urow = &u[i * rank..(i + 1) * rank];
    for (t, &j) in cols.iter().enumerate() {
        buf[t] = prim::dot_product(urow, v, 0, j * rank, rank);
    }
}

/// Applies `out_row += w_t * S[j_t,:]` for every non-zero `w_t` of a tile.
#[inline]
fn scatter_mult_add(
    w: OpRef<'_>,
    n: usize,
    s: &[f64],
    k: usize,
    col_of: impl Fn(usize) -> usize,
    out: &mut [f64],
) {
    for t in 0..n {
        let wv = match w {
            OpRef::S(ws) => ws[t],
            OpRef::C(c) => c,
        };
        if wv != 0.0 {
            let j = col_of(t);
            prim::vect_mult_add(&s[j * k..(j + 1) * k], wv, out, 0, 0, k);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn block_sparse_exec(
    spec: &OuterSpec,
    kernel: &fusedml_core::spoof::block::BlockKernel,
    x: &SparseMatrix,
    u: &[f64],
    v: &[f64],
    rank: usize,
    sides: &[SideInput],
    scalars: &[f64],
    backend: CellBackend,
) -> Matrix {
    let n = x.rows();
    let m = x.cols();
    let width = super::kernels().tile_width;
    let mono: Option<&MonoKernel> =
        if backend == CellBackend::Mono { kernel.mono_for(spec.result) } else { None };
    let run_body = mono.is_none();
    let bp = &kernel.block;
    let work = (x.nnz() / n.max(1)).max(1) * rank;
    match spec.out {
        OuterOut::FullAgg => {
            let acc = par::par_map_reduce(
                n,
                work,
                0.0f64,
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                    let mut uvbuf = vec![0.0f64; width];
                    let mut acc = 0.0;
                    for i in lo..hi {
                        tr.begin_row_sparse(i);
                        for (vchunk, cchunk) in
                            x.row_values(i).chunks(width).zip(x.row_cols(i).chunks(width))
                        {
                            let nt = cchunk.len();
                            uv_tile_sparse(u, v, rank, i, cchunk, &mut uvbuf[..nt]);
                            acc = tr.sparse_tile(
                                TileSrc::Slice(vchunk),
                                TileSrc::Slice(&uvbuf[..nt]),
                                i,
                                cchunk,
                                run_body,
                                |ev, ctx, nt| match mono {
                                    Some(mk) => mk.fold(AggOp::Sum, acc, ev, ctx, nt),
                                    None => fold_result(
                                        AggOp::Sum,
                                        acc,
                                        ev.value_of(bp, spec.result, ctx, nt),
                                        nt,
                                    ),
                                },
                            );
                        }
                    }
                    acc
                },
                |a, b| a + b,
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
        OuterOut::RightMM { side } => {
            // out (n×k) : out[i,:] += w_ij * S[j,:], row-parallel.
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let mut out = pool::take_zeroed(n * k);
            par::par_row_bands_mut(&mut out, n, k, work, |r0, band| {
                let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                let mut uvbuf = vec![0.0f64; width];
                let mut wtile = vec![0.0f64; width];
                for (bi, orow) in band.chunks_exact_mut(k).enumerate() {
                    let i = r0 + bi;
                    tr.begin_row_sparse(i);
                    for (vchunk, cchunk) in
                        x.row_values(i).chunks(width).zip(x.row_cols(i).chunks(width))
                    {
                        let nt = cchunk.len();
                        uv_tile_sparse(u, v, rank, i, cchunk, &mut uvbuf[..nt]);
                        tr.sparse_tile(
                            TileSrc::Slice(vchunk),
                            TileSrc::Slice(&uvbuf[..nt]),
                            i,
                            cchunk,
                            run_body,
                            |ev, ctx, nt| {
                                let w = match mono {
                                    Some(mk) => {
                                        mk.map_into(ev, ctx, nt, &mut wtile[..nt]);
                                        OpRef::S(&wtile[..nt])
                                    }
                                    None => ev.value_of(bp, spec.result, ctx, nt),
                                };
                                scatter_mult_add(w, nt, &s, k, |t| cchunk[t], orow);
                            },
                        );
                    }
                }
            });
            Matrix::dense(DenseMatrix::new(n, k, out))
        }
        OuterOut::LeftMM { side } => {
            // out (m×k) : out[j,:] += w_ij * S[i,:]; per-thread partials.
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let acc = par::par_map_reduce(
                n,
                work,
                pool::take_zeroed(m * k),
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                    let mut uvbuf = vec![0.0f64; width];
                    let mut wtile = vec![0.0f64; width];
                    let mut acc = pool::take_zeroed(m * k);
                    for i in lo..hi {
                        tr.begin_row_sparse(i);
                        for (vchunk, cchunk) in
                            x.row_values(i).chunks(width).zip(x.row_cols(i).chunks(width))
                        {
                            let nt = cchunk.len();
                            uv_tile_sparse(u, v, rank, i, cchunk, &mut uvbuf[..nt]);
                            tr.sparse_tile(
                                TileSrc::Slice(vchunk),
                                TileSrc::Slice(&uvbuf[..nt]),
                                i,
                                cchunk,
                                run_body,
                                |ev, ctx, nt| {
                                    let w = match mono {
                                        Some(mk) => {
                                            mk.map_into(ev, ctx, nt, &mut wtile[..nt]);
                                            OpRef::S(&wtile[..nt])
                                        }
                                        None => ev.value_of(bp, spec.result, ctx, nt),
                                    };
                                    for t in 0..nt {
                                        let wv = match w {
                                            OpRef::S(ws) => ws[t],
                                            OpRef::C(c) => c,
                                        };
                                        if wv != 0.0 {
                                            let j = cchunk[t];
                                            prim::vect_mult_add(
                                                &s[i * k..(i + 1) * k],
                                                wv,
                                                &mut acc[j * k..(j + 1) * k],
                                                0,
                                                0,
                                                k,
                                            );
                                        }
                                    }
                                },
                            );
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += y;
                    }
                    pool::give(b);
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(m, k, acc))
        }
        OuterOut::NoAgg => {
            let triples = par::par_map_reduce(
                n,
                work,
                Vec::new(),
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                    let mut uvbuf = vec![0.0f64; width];
                    let mut wtile = vec![0.0f64; width];
                    let mut triples = Vec::new();
                    for i in lo..hi {
                        tr.begin_row_sparse(i);
                        for (vchunk, cchunk) in
                            x.row_values(i).chunks(width).zip(x.row_cols(i).chunks(width))
                        {
                            let nt = cchunk.len();
                            uv_tile_sparse(u, v, rank, i, cchunk, &mut uvbuf[..nt]);
                            tr.sparse_tile(
                                TileSrc::Slice(vchunk),
                                TileSrc::Slice(&uvbuf[..nt]),
                                i,
                                cchunk,
                                run_body,
                                |ev, ctx, nt| match mono {
                                    Some(mk) => mk.map_into(ev, ctx, nt, &mut wtile[..nt]),
                                    None => write_result(
                                        ev.value_of(bp, spec.result, ctx, nt),
                                        &mut wtile[..nt],
                                    ),
                                },
                            );
                            for (t, &j) in cchunk.iter().enumerate() {
                                if wtile[t] != 0.0 {
                                    triples.push((i, j, wtile[t]));
                                }
                            }
                        }
                    }
                    triples
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            Matrix::sparse(SparseMatrix::from_triples(n, m, triples))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn block_dense_exec(
    spec: &OuterSpec,
    kernel: &fusedml_core::spoof::block::BlockKernel,
    main: Option<&Matrix>,
    u: &[f64],
    v: &[f64],
    rank: usize,
    sides: &[SideInput],
    scalars: &[f64],
    n: usize,
    m: usize,
    backend: CellBackend,
) -> Matrix {
    let width = super::kernels().tile_width;
    let mono: Option<&MonoKernel> =
        if backend == CellBackend::Mono { kernel.mono_for(spec.result) } else { None };
    let run_body = mono.is_none();
    let bp = &kernel.block;
    match spec.out {
        OuterOut::FullAgg => {
            let acc = par::par_map_reduce(
                n,
                m * rank,
                0.0f64,
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                    let mut mr = MainReader::new(main, m);
                    let mut uvbuf = vec![0.0f64; width];
                    let mut acc = 0.0;
                    for i in lo..hi {
                        tr.begin_row_dense(i);
                        let row_src = mr.row(i);
                        let mut c0 = 0;
                        while c0 < m {
                            let nt = width.min(m - c0);
                            uv_tile_dense(u, v, rank, i, c0, &mut uvbuf[..nt]);
                            let mt = tiles::sub_tile(row_src, c0, nt);
                            acc = tr.dense_tile(
                                mt,
                                TileSrc::Slice(&uvbuf[..nt]),
                                i,
                                c0,
                                nt,
                                run_body,
                                |ev, ctx, nt| match mono {
                                    Some(mk) => mk.fold(AggOp::Sum, acc, ev, ctx, nt),
                                    None => fold_result(
                                        AggOp::Sum,
                                        acc,
                                        ev.value_of(bp, spec.result, ctx, nt),
                                        nt,
                                    ),
                                },
                            );
                            c0 += nt;
                        }
                    }
                    acc
                },
                |a, b| a + b,
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
        OuterOut::RightMM { side } => {
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let mut out = pool::take_zeroed(n * k);
            par::par_row_bands_mut(&mut out, n, k, m * rank, |r0, band| {
                let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                let mut mr = MainReader::new(main, m);
                let mut uvbuf = vec![0.0f64; width];
                let mut wtile = vec![0.0f64; width];
                for (bi, orow) in band.chunks_exact_mut(k).enumerate() {
                    let i = r0 + bi;
                    tr.begin_row_dense(i);
                    let row_src = mr.row(i);
                    let mut c0 = 0;
                    while c0 < m {
                        let nt = width.min(m - c0);
                        uv_tile_dense(u, v, rank, i, c0, &mut uvbuf[..nt]);
                        let mt = tiles::sub_tile(row_src, c0, nt);
                        tr.dense_tile(
                            mt,
                            TileSrc::Slice(&uvbuf[..nt]),
                            i,
                            c0,
                            nt,
                            run_body,
                            |ev, ctx, nt| {
                                let w = match mono {
                                    Some(mk) => {
                                        mk.map_into(ev, ctx, nt, &mut wtile[..nt]);
                                        OpRef::S(&wtile[..nt])
                                    }
                                    None => ev.value_of(bp, spec.result, ctx, nt),
                                };
                                scatter_mult_add(w, nt, &s, k, |t| c0 + t, orow);
                            },
                        );
                        c0 += nt;
                    }
                }
            });
            Matrix::dense(DenseMatrix::new(n, k, out))
        }
        OuterOut::LeftMM { side } => {
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let acc = par::par_map_reduce(
                n,
                m * rank,
                pool::take_zeroed(m * k),
                |lo, hi| {
                    let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                    let mut mr = MainReader::new(main, m);
                    let mut uvbuf = vec![0.0f64; width];
                    let mut wtile = vec![0.0f64; width];
                    let mut acc = pool::take_zeroed(m * k);
                    for i in lo..hi {
                        tr.begin_row_dense(i);
                        let row_src = mr.row(i);
                        let mut c0 = 0;
                        while c0 < m {
                            let nt = width.min(m - c0);
                            uv_tile_dense(u, v, rank, i, c0, &mut uvbuf[..nt]);
                            let mt = tiles::sub_tile(row_src, c0, nt);
                            tr.dense_tile(
                                mt,
                                TileSrc::Slice(&uvbuf[..nt]),
                                i,
                                c0,
                                nt,
                                run_body,
                                |ev, ctx, nt| {
                                    let w = match mono {
                                        Some(mk) => {
                                            mk.map_into(ev, ctx, nt, &mut wtile[..nt]);
                                            OpRef::S(&wtile[..nt])
                                        }
                                        None => ev.value_of(bp, spec.result, ctx, nt),
                                    };
                                    for t in 0..nt {
                                        let wv = match w {
                                            OpRef::S(ws) => ws[t],
                                            OpRef::C(c) => c,
                                        };
                                        if wv != 0.0 {
                                            let j = c0 + t;
                                            prim::vect_mult_add(
                                                &s[i * k..(i + 1) * k],
                                                wv,
                                                &mut acc[j * k..(j + 1) * k],
                                                0,
                                                0,
                                                k,
                                            );
                                        }
                                    }
                                },
                            );
                            c0 += nt;
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += y;
                    }
                    pool::give(b);
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(m, k, acc))
        }
        OuterOut::NoAgg => {
            let mut out = pool::take_zeroed(n * m);
            par::par_row_bands_mut(&mut out, n, m, m * rank, |r0, band| {
                let mut tr = TileRunner::new(kernel, sides, scalars, m, width);
                let mut mr = MainReader::new(main, m);
                let mut uvbuf = vec![0.0f64; width];
                for (bi, orow) in band.chunks_exact_mut(m).enumerate() {
                    let i = r0 + bi;
                    tr.begin_row_dense(i);
                    let row_src = mr.row(i);
                    let mut c0 = 0;
                    while c0 < m {
                        let nt = width.min(m - c0);
                        uv_tile_dense(u, v, rank, i, c0, &mut uvbuf[..nt]);
                        let mt = tiles::sub_tile(row_src, c0, nt);
                        let dst = &mut orow[c0..c0 + nt];
                        tr.dense_tile(
                            mt,
                            TileSrc::Slice(&uvbuf[..nt]),
                            i,
                            c0,
                            nt,
                            run_body,
                            |ev, ctx, nt| match mono {
                                Some(mk) => mk.map_into(ev, ctx, nt, dst),
                                None => write_result(ev.value_of(bp, spec.result, ctx, nt), dst),
                            },
                        );
                        c0 += nt;
                    }
                }
            });
            Matrix::dense(DenseMatrix::new(n, m, out))
        }
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn exec_value(
    spec: &OuterSpec,
    regs: &mut [f64],
    a: f64,
    u: &[f64],
    v: &[f64],
    r: usize,
    sides: &[SideInput],
    scalars: &[f64],
    i: usize,
    j: usize,
) -> f64 {
    let uv = prim::dot_product(&u[i * r..(i + 1) * r], &v[j * r..(j + 1) * r], 0, 0, r);
    let side_at = |s: usize, acc: SideAccess| sides[s].value_at(acc, i, j);
    eval_scalar_program(&spec.prog, regs, a, uv, &side_at, scalars);
    regs[spec.result as usize]
}

#[allow(clippy::too_many_arguments)]
fn sparse_exec(
    spec: &OuterSpec,
    x: &SparseMatrix,
    u: &[f64],
    v: &[f64],
    r: usize,
    sides: &[SideInput],
    scalars: &[f64],
) -> Matrix {
    let n = x.rows();
    let m = x.cols();
    match spec.out {
        OuterOut::FullAgg => {
            let acc = par::par_map_reduce(
                n,
                (x.nnz() / n.max(1)).max(1) * r,
                0.0f64,
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = 0.0;
                    for i in lo..hi {
                        for (j, a) in x.row_iter(i) {
                            acc += exec_value(spec, &mut regs, a, u, v, r, sides, scalars, i, j);
                        }
                    }
                    acc
                },
                |a, b| a + b,
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
        OuterOut::RightMM { side } => {
            // out (n×k) : out[i,:] += w_ij * S[j,:], row-parallel.
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let mut out = pool::take_zeroed(n * k);
            par::par_rows_mut(&mut out, n, k, (x.nnz() / n.max(1)).max(1) * r, |i, orow| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                for (j, a) in x.row_iter(i) {
                    let w = exec_value(spec, &mut regs, a, u, v, r, sides, scalars, i, j);
                    if w != 0.0 {
                        prim::vect_mult_add(&s[j * k..(j + 1) * k], w, orow, 0, 0, k);
                    }
                }
            });
            Matrix::dense(DenseMatrix::new(n, k, out))
        }
        OuterOut::LeftMM { side } => {
            // out (m×k) : out[j,:] += w_ij * S[i,:]; per-thread partials.
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let acc = par::par_map_reduce(
                n,
                (x.nnz() / n.max(1)).max(1) * r,
                pool::take_zeroed(m * k),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = pool::take_zeroed(m * k);
                    for i in lo..hi {
                        for (j, a) in x.row_iter(i) {
                            let w = exec_value(spec, &mut regs, a, u, v, r, sides, scalars, i, j);
                            if w != 0.0 {
                                prim::vect_mult_add(
                                    &s[i * k..(i + 1) * k],
                                    w,
                                    &mut acc[j * k..(j + 1) * k],
                                    0,
                                    0,
                                    k,
                                );
                            }
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += y;
                    }
                    pool::give(b);
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(m, k, acc))
        }
        OuterOut::NoAgg => {
            let mut triples = Vec::with_capacity(x.nnz());
            let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
            for i in 0..n {
                for (j, a) in x.row_iter(i) {
                    let w = exec_value(spec, &mut regs, a, u, v, r, sides, scalars, i, j);
                    if w != 0.0 {
                        triples.push((i, j, w));
                    }
                }
            }
            Matrix::sparse(SparseMatrix::from_triples(n, m, triples))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dense_exec(
    spec: &OuterSpec,
    main: Option<&Matrix>,
    u: &[f64],
    v: &[f64],
    r: usize,
    sides: &[SideInput],
    scalars: &[f64],
    n: usize,
    m: usize,
) -> Matrix {
    let main_get = |i: usize, j: usize| main.map_or(0.0, |x| x.get(i, j));
    match spec.out {
        OuterOut::FullAgg => {
            let acc = par::par_map_reduce(
                n,
                m * r,
                0.0f64,
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = 0.0;
                    for i in lo..hi {
                        for j in 0..m {
                            acc += exec_value(
                                spec,
                                &mut regs,
                                main_get(i, j),
                                u,
                                v,
                                r,
                                sides,
                                scalars,
                                i,
                                j,
                            );
                        }
                    }
                    acc
                },
                |a, b| a + b,
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
        OuterOut::RightMM { side } => {
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let mut out = pool::take_zeroed(n * k);
            par::par_rows_mut(&mut out, n, k, m * r, |i, orow| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                for j in 0..m {
                    let w =
                        exec_value(spec, &mut regs, main_get(i, j), u, v, r, sides, scalars, i, j);
                    if w != 0.0 {
                        prim::vect_mult_add(&s[j * k..(j + 1) * k], w, orow, 0, 0, k);
                    }
                }
            });
            Matrix::dense(DenseMatrix::new(n, k, out))
        }
        OuterOut::LeftMM { side } => {
            let s = sides[side].to_dense_values().into_owned();
            let k = sides[side].cols();
            let acc = par::par_map_reduce(
                n,
                m * r,
                pool::take_zeroed(m * k),
                |lo, hi| {
                    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                    let mut acc = pool::take_zeroed(m * k);
                    for i in lo..hi {
                        for j in 0..m {
                            let w = exec_value(
                                spec,
                                &mut regs,
                                main_get(i, j),
                                u,
                                v,
                                r,
                                sides,
                                scalars,
                                i,
                                j,
                            );
                            if w != 0.0 {
                                prim::vect_mult_add(
                                    &s[i * k..(i + 1) * k],
                                    w,
                                    &mut acc[j * k..(j + 1) * k],
                                    0,
                                    0,
                                    k,
                                );
                            }
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += y;
                    }
                    pool::give(b);
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(m, k, acc))
        }
        OuterOut::NoAgg => {
            let mut out = pool::take_zeroed(n * m);
            par::par_rows_mut(&mut out, n, m, m * r, |i, orow| {
                let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
                for (j, slot) in orow.iter_mut().enumerate() {
                    *slot =
                        exec_value(spec, &mut regs, main_get(i, j), u, v, r, sides, scalars, i, j);
                }
            });
            Matrix::dense(DenseMatrix::new(n, m, out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::{Instr, Program};
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::{self, AggDir, AggOp, BinaryOp, UnaryOp};

    /// Reference: the unfused expression `sum(X ⊙ log(UV^T + eps))`.
    fn reference_loss(x: &Matrix, u: &Matrix, v: &Matrix, eps: f64) -> f64 {
        let uvt = ops::matmult(u, &ops::transpose(v));
        let plus = ops::binary_scalar(&uvt, eps, BinaryOp::Add);
        let lg = ops::unary(&plus, UnaryOp::Log);
        let prod = ops::binary(x, &lg, BinaryOp::Mult);
        ops::agg(&prod, AggOp::Sum, AggDir::Full).get(0, 0)
    }

    /// Spec for `sum(X ⊙ log(UV^T + eps))`.
    fn loss_spec(eps: f64, sparse_safe: bool) -> OuterSpec {
        OuterSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadUVDot { out: 1 },
                    Instr::LoadConst { out: 2, value: eps },
                    Instr::Binary { out: 3, op: BinaryOp::Add, a: 1, b: 2 },
                    Instr::Unary { out: 4, op: UnaryOp::Log, a: 3 },
                    Instr::Binary { out: 5, op: BinaryOp::Mult, a: 0, b: 4 },
                ],
                n_regs: 6,
                vreg_lens: vec![],
            },
            result: 5,
            out: OuterOut::FullAgg,
            u_side: 0,
            v_side: 1,
            rank: 8,
            sparse_safe,
        }
    }

    #[test]
    fn sparse_loss_matches_reference() {
        let (n, m, r) = (300, 200, 8);
        let x = generate::rand_matrix(n, m, 1.0, 5.0, 0.02, 1);
        let u = generate::rand_dense(n, r, 0.1, 1.0, 2);
        let v = generate::rand_dense(m, r, 0.1, 1.0, 3);
        let spec = loss_spec(1e-15, true);
        let out = execute(&spec, Some(&x), &[SideInput::bind(&u), SideInput::bind(&v)], &[], n, m);
        let expect = reference_loss(&x, &u, &v, 1e-15);
        assert!(
            fusedml_linalg::approx_eq(out.get(0, 0), expect, 1e-9),
            "{} vs {}",
            out.get(0, 0),
            expect
        );
    }

    #[test]
    fn dense_main_agrees_with_sparse_path() {
        let (n, m, r) = (100, 80, 8);
        let xd = generate::rand_matrix(n, m, 1.0, 5.0, 0.1, 4).to_dense();
        let u = generate::rand_dense(n, r, 0.1, 1.0, 5);
        let v = generate::rand_dense(m, r, 0.1, 1.0, 6);
        let sides = [SideInput::bind(&u), SideInput::bind(&v)];
        let sx = Matrix::sparse(SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        let a = execute(&loss_spec(1e-15, true), Some(&sx), &sides, &[], n, m);
        let b = execute(&loss_spec(1e-15, false), Some(&dx), &sides, &[], n, m);
        assert!(fusedml_linalg::approx_eq(a.get(0, 0), b.get(0, 0), 1e-9));
    }

    /// Spec for the ALS right-mm update `((X != 0) ⊙ (UV^T)) %*% V`.
    fn update_spec() -> OuterSpec {
        OuterSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadConst { out: 1, value: 0.0 },
                    Instr::Binary { out: 2, op: BinaryOp::Neq, a: 0, b: 1 },
                    Instr::LoadUVDot { out: 3 },
                    Instr::Binary { out: 4, op: BinaryOp::Mult, a: 2, b: 3 },
                ],
                n_regs: 5,
                vreg_lens: vec![],
            },
            result: 4,
            out: OuterOut::RightMM { side: 1 },
            u_side: 0,
            v_side: 1,
            rank: 6,
            sparse_safe: true,
        }
    }

    #[test]
    fn right_mm_matches_reference() {
        let (n, m, r) = (150, 120, 6);
        let x = generate::rand_matrix(n, m, 1.0, 5.0, 0.05, 7);
        let u = generate::rand_dense(n, r, 0.1, 1.0, 8);
        let v = generate::rand_dense(m, r, 0.1, 1.0, 9);
        let out = execute(
            &update_spec(),
            Some(&x),
            &[SideInput::bind(&u), SideInput::bind(&v)],
            &[],
            n,
            m,
        );
        // Reference: ((X != 0) ⊙ (U V^T)) %*% V.
        let uvt = ops::matmult(&u, &ops::transpose(&v));
        let mask = ops::binary_scalar(&x, 0.0, BinaryOp::Neq);
        let w = ops::binary(&mask, &uvt, BinaryOp::Mult);
        let expect = ops::matmult(&w, &v);
        assert!(out.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn left_mm_matches_reference() {
        let (n, m, r) = (120, 100, 6);
        let x = generate::rand_matrix(n, m, 1.0, 5.0, 0.05, 10);
        let u = generate::rand_dense(n, r, 0.1, 1.0, 11);
        let v = generate::rand_dense(m, r, 0.1, 1.0, 12);
        let spec = OuterSpec { out: OuterOut::LeftMM { side: 0 }, ..update_spec() };
        let out = execute(&spec, Some(&x), &[SideInput::bind(&u), SideInput::bind(&v)], &[], n, m);
        // Reference: t((X != 0) ⊙ (U V^T)) %*% U.
        let uvt = ops::matmult(&u, &ops::transpose(&v));
        let mask = ops::binary_scalar(&x, 0.0, BinaryOp::Neq);
        let w = ops::binary(&mask, &uvt, BinaryOp::Mult);
        let expect = ops::matmult(&ops::transpose(&w), &u);
        assert!(out.approx_eq(&expect, 1e-9));
    }

    /// The block backend must agree with the scalar oracle for every output
    /// variant over sparse and dense mains (ragged tile tails included).
    #[test]
    fn block_backends_match_scalar_oracle() {
        use fusedml_core::spoof::block::CellBackend;
        let (n, m, r) = (90, 70, 6);
        let xd = generate::rand_matrix(n, m, 1.0, 5.0, 0.07, 21).to_dense();
        let u = generate::rand_dense(n, r, 0.1, 1.0, 22);
        let v = generate::rand_dense(m, r, 0.1, 1.0, 23);
        let sides = [SideInput::bind(&u), SideInput::bind(&v)];
        let sx = Matrix::sparse(SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        let variants = [
            OuterOut::FullAgg,
            OuterOut::RightMM { side: 1 },
            OuterOut::LeftMM { side: 0 },
            OuterOut::NoAgg,
        ];
        for out_variant in variants {
            let spec = OuterSpec { out: out_variant, rank: r, ..update_spec() };
            for main in [&sx, &dx] {
                let oracle =
                    execute_with(&spec, Some(main), &sides, &[], n, m, CellBackend::Scalar);
                for backend in [CellBackend::Block, CellBackend::BlockFast, CellBackend::Mono] {
                    let got = execute_with(&spec, Some(main), &sides, &[], n, m, backend);
                    assert!(
                        got.approx_eq(&oracle, 1e-11),
                        "{out_variant:?} {backend:?} sparse={}",
                        main.is_sparse()
                    );
                }
            }
        }
    }

    #[test]
    fn no_agg_produces_sparse_w() {
        let (n, m, r) = (80, 70, 6);
        let x = generate::rand_matrix(n, m, 1.0, 5.0, 0.05, 13);
        let u = generate::rand_dense(n, r, 0.1, 1.0, 14);
        let v = generate::rand_dense(m, r, 0.1, 1.0, 15);
        let spec = OuterSpec { out: OuterOut::NoAgg, ..update_spec() };
        let out = execute(&spec, Some(&x), &[SideInput::bind(&u), SideInput::bind(&v)], &[], n, m);
        assert!(out.is_sparse());
        assert_eq!(out.nnz(), x.nnz(), "W has X's sparsity pattern");
    }
}
