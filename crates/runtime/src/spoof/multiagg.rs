//! The `SpoofMultiAggregate` skeleton: one pass over the shared main input
//! evaluating `k` aggregate programs (paper §5.2 "Multi-Aggregate
//! Operations": `sum(X⊙Y), sum(X⊙Z)` compile to one operator with a shared
//! read of `X`).
//!
//! Like the Cell skeleton, the default block backend evaluates the shared
//! register program tile-at-a-time — with per-aggregate closure-specialized
//! product chains where the shapes allow — and the scalar interpreter is
//! retained as the differential-test oracle.

use crate::side::SideInput;
use crate::spoof::tiles::{self, MainReader, TileRunner};
use fusedml_core::spoof::block::{self, fold_result, CellBackend, FastKernel, OpRef, TileSrc};
use fusedml_core::spoof::mono::MonoKernel;
use fusedml_core::spoof::{eval_scalar_program, MAggSpec, SideAccess};
use fusedml_linalg::ops::AggOp;
use fusedml_linalg::{par, DenseMatrix, Matrix};

/// Executes a MultiAgg operator, returning one 1×1 matrix per aggregate.
pub fn execute(
    spec: &MAggSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
) -> Vec<Matrix> {
    execute_with(spec, main, sides, scalars, iter_rows, iter_cols, super::kernels().backend)
}

/// Executes under an explicit backend (differential tests pin `Scalar`).
pub fn execute_with(
    spec: &MAggSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
    backend: CellBackend,
) -> Vec<Matrix> {
    let accs = if backend != CellBackend::Scalar {
        let caches = super::kernels();
        let kernel = caches.block.get_or_lower(&spec.prog);
        if tiles::supported(&kernel) {
            block_fold(
                spec,
                &kernel,
                backend,
                caches.tile_width,
                main,
                sides,
                scalars,
                iter_rows,
                iter_cols,
            )
        } else {
            scalar_fold(spec, main, sides, scalars, iter_rows, iter_cols)
        }
    } else {
        scalar_fold(spec, main, sides, scalars, iter_rows, iter_cols)
    };
    // Shared finalization: min/max over sparse-safe iteration must still
    // observe the implicit zeros, and `Mean` divides by the cell count.
    let sparse_iter = matches!(main, Some(Matrix::Sparse(_))) && spec.sparse_safe;
    let nnz = main.map_or(0, |m| m.nnz());
    let total = iter_rows * iter_cols;
    accs.into_iter()
        .zip(&spec.results)
        .map(|(mut v, &(_, op))| {
            if sparse_iter && !op.sparse_safe() && nnz < total {
                v = op.fold(v, 0.0);
            }
            if op == AggOp::Mean {
                v /= total as f64;
            }
            Matrix::dense(DenseMatrix::filled(1, 1, v))
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn block_fold(
    spec: &MAggSpec,
    kernel: &fusedml_core::spoof::block::BlockKernel,
    backend: CellBackend,
    width: usize,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    rows: usize,
    cols: usize,
) -> Vec<f64> {
    let fast_ok = matches!(backend, CellBackend::BlockFast | CellBackend::Mono);
    let mono_ok = backend == CellBackend::Mono;
    let bp = &kernel.block;
    let k = spec.results.len();
    let identities: Vec<f64> = spec.results.iter().map(|&(_, op)| op.identity()).collect();
    let fasts: Vec<Option<&FastKernel>> = spec
        .results
        .iter()
        .map(|&(reg, _)| if fast_ok { kernel.fast_for(reg) } else { None })
        .collect();
    let monos: Vec<Option<&MonoKernel>> = spec
        .results
        .iter()
        .zip(&fasts)
        .map(
            |(&(reg, _), fast)| {
                if mono_ok && fast.is_none() {
                    kernel.mono_for(reg)
                } else {
                    None
                }
            },
        )
        .collect();
    // The generic body only needs to run when some aggregate lacks a fused
    // fast kernel or a monomorphized kernel.
    let need_body = fasts.iter().zip(&monos).any(|(f, m)| f.is_none() && m.is_none());
    let sparse_main = match main {
        Some(Matrix::Sparse(s)) if spec.sparse_safe => Some(s),
        _ => None,
    };
    let work = match sparse_main {
        Some(s) => (s.nnz() / rows.max(1)).max(1) * 4 * k,
        None => cols.max(1) * 4 * k,
    };

    par::par_map_reduce(
        rows,
        work,
        identities.clone(),
        |lo, hi| {
            let mut tr = TileRunner::new(kernel, sides, scalars, cols, width);
            let mut mr = MainReader::new(main, cols);
            let mut ptile = vec![0.0f64; width];
            let mut accs = identities.clone();
            let zero = TileSrc::Const(0.0);
            for r in lo..hi {
                let fold = |ev: &block::BlockEval,
                            ctx: &block::TileCtx<'_>,
                            n: usize,
                            accs: &mut [f64],
                            ptile: &mut [f64]| {
                    for (j, (&(reg, op), (fast, mono))) in
                        spec.results.iter().zip(fasts.iter().zip(&monos)).enumerate()
                    {
                        accs[j] = match (fast, mono) {
                            (Some(fk), _) if matches!(op, AggOp::Sum | AggOp::Mean) => {
                                accs[j] + tiles::factors(ev, fk, ctx, n).sum(n)
                            }
                            (Some(fk), _) => {
                                tiles::factors(ev, fk, ctx, n).product_into(&mut ptile[..n]);
                                fold_result(op, accs[j], OpRef::S(&ptile[..n]), n)
                            }
                            (None, Some(mk)) => mk.fold(op, accs[j], ev, ctx, n),
                            (None, None) => {
                                fold_result(op, accs[j], ev.value_of(bp, reg, ctx, n), n)
                            }
                        };
                    }
                };
                match sparse_main {
                    Some(s) => {
                        tr.begin_row_sparse(r);
                        for (vchunk, cchunk) in
                            s.row_values(r).chunks(width).zip(s.row_cols(r).chunks(width))
                        {
                            tr.sparse_tile(
                                TileSrc::Slice(vchunk),
                                zero,
                                r,
                                cchunk,
                                need_body,
                                |ev, ctx, n| fold(ev, ctx, n, &mut accs, &mut ptile),
                            );
                        }
                    }
                    None => {
                        tr.begin_row_dense(r);
                        let row_src = mr.row(r);
                        let mut c0 = 0;
                        while c0 < cols {
                            let n = width.min(cols - c0);
                            let m = tiles::sub_tile(row_src, c0, n);
                            tr.dense_tile(m, zero, r, c0, n, need_body, |ev, ctx, n| {
                                fold(ev, ctx, n, &mut accs, &mut ptile)
                            });
                            c0 += n;
                        }
                    }
                }
            }
            accs
        },
        |mut a, b| {
            for (j, &(_, op)) in spec.results.iter().enumerate() {
                a[j] = op.combine(a[j], b[j]);
            }
            a
        },
    )
}

fn scalar_fold(
    spec: &MAggSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
) -> Vec<f64> {
    let k = spec.results.len();
    let identities: Vec<f64> = spec.results.iter().map(|&(_, op)| op.identity()).collect();

    let fold_row_range = |lo: usize, hi: usize| -> Vec<f64> {
        let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
        let mut accs = identities.clone();
        let mut fold_cell = |a: f64, r: usize, c: usize, accs: &mut Vec<f64>| {
            let side_at = |i: usize, acc: SideAccess| sides[i].value_at(acc, r, c);
            eval_scalar_program(&spec.prog, &mut regs, a, 0.0, &side_at, scalars);
            for (j, &(reg, op)) in spec.results.iter().enumerate() {
                accs[j] = op.fold(accs[j], regs[reg as usize]);
            }
        };
        match (main, spec.sparse_safe) {
            (Some(Matrix::Sparse(s)), true) => {
                for r in lo..hi {
                    for (c, v) in s.row_iter(r) {
                        fold_cell(v, r, c, &mut accs);
                    }
                }
            }
            (m, _) => {
                for r in lo..hi {
                    for c in 0..iter_cols {
                        let a = m.map_or(0.0, |mm| mm.get(r, c));
                        fold_cell(a, r, c, &mut accs);
                    }
                }
            }
        }
        accs
    };

    par::par_map_reduce(
        iter_rows,
        iter_cols.max(1) * 4 * k,
        identities.clone(),
        fold_row_range,
        |mut a, b| {
            for (j, &(_, op)) in spec.results.iter().enumerate() {
                a[j] = op.combine(a[j], b[j]);
            }
            a
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::{Instr, Program};
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::{self, AggDir, AggOp, BinaryOp};

    /// `sum(X⊙Y), sum(X⊙Z)`: two aggregates sharing the main input.
    fn spec() -> MAggSpec {
        MAggSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
                    Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                    Instr::LoadSide { out: 3, side: 1, access: SideAccess::Cell },
                    Instr::Binary { out: 4, op: BinaryOp::Mult, a: 0, b: 3 },
                ],
                n_regs: 5,
                vreg_lens: vec![],
            },
            results: vec![(2, AggOp::Sum), (4, AggOp::Sum)],
            sparse_safe: true,
        }
    }

    #[test]
    fn two_aggregates_match_reference() {
        let x = generate::rand_matrix(60, 50, -1.0, 1.0, 0.2, 1);
        let y = generate::rand_dense(60, 50, -1.0, 1.0, 2);
        let z = generate::rand_dense(60, 50, -1.0, 1.0, 3);
        let outs =
            execute(&spec(), Some(&x), &[SideInput::bind(&y), SideInput::bind(&z)], &[], 60, 50);
        assert_eq!(outs.len(), 2);
        let e1 = ops::agg(&ops::binary(&x, &y, BinaryOp::Mult), AggOp::Sum, AggDir::Full);
        let e2 = ops::agg(&ops::binary(&x, &z, BinaryOp::Mult), AggOp::Sum, AggDir::Full);
        assert!(fusedml_linalg::approx_eq(outs[0].get(0, 0), e1.get(0, 0), 1e-9));
        assert!(fusedml_linalg::approx_eq(outs[1].get(0, 0), e2.get(0, 0), 1e-9));
    }

    #[test]
    fn dense_main_path_agrees_with_sparse() {
        let xd = generate::rand_matrix(40, 40, -1.0, 1.0, 0.3, 4).to_dense();
        let y = generate::rand_dense(40, 40, -1.0, 1.0, 5);
        let z = generate::rand_dense(40, 40, -1.0, 1.0, 6);
        let sides = [SideInput::bind(&y), SideInput::bind(&z)];
        let sx = Matrix::sparse(fusedml_linalg::SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        let a = execute(&spec(), Some(&sx), &sides, &[], 40, 40);
        let b = execute(&spec(), Some(&dx), &sides, &[], 40, 40);
        for (x1, x2) in a.iter().zip(&b) {
            assert!(fusedml_linalg::approx_eq(x1.get(0, 0), x2.get(0, 0), 1e-9));
        }
    }

    #[test]
    fn block_backends_match_scalar_oracle() {
        // Mixed aggregates (one fast product chain, one generic via SumSq on
        // a division) over ragged shapes.
        let mixed = MAggSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
                    Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                    Instr::LoadSide { out: 3, side: 1, access: SideAccess::Cell },
                    Instr::Binary { out: 4, op: BinaryOp::Max, a: 0, b: 3 },
                ],
                n_regs: 5,
                vreg_lens: vec![],
            },
            results: vec![(2, AggOp::Sum), (4, AggOp::Max), (2, AggOp::Mean)],
            sparse_safe: false,
        };
        let (rows, cols) = (31, 270);
        let xd = generate::rand_matrix(rows, cols, -1.0, 1.0, 0.4, 7).to_dense();
        let y = generate::rand_dense(rows, cols, -1.0, 1.0, 8);
        let z = generate::rand_dense(rows, cols, -1.0, 1.0, 9);
        let sides = [SideInput::bind(&y), SideInput::bind(&z)];
        let sx = Matrix::sparse(fusedml_linalg::SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        for spec in [spec(), mixed] {
            for main in [&dx, &sx] {
                let oracle =
                    execute_with(&spec, Some(main), &sides, &[], rows, cols, CellBackend::Scalar);
                for backend in [CellBackend::Block, CellBackend::BlockFast] {
                    let outs = execute_with(&spec, Some(main), &sides, &[], rows, cols, backend);
                    for (o, e) in outs.iter().zip(&oracle) {
                        assert!(
                            fusedml_linalg::approx_eq(o.get(0, 0), e.get(0, 0), 1e-12),
                            "{backend:?} sparse={} {} vs {}",
                            main.is_sparse(),
                            o.get(0, 0),
                            e.get(0, 0)
                        );
                    }
                }
            }
        }
    }
}
