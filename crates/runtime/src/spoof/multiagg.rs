//! The `SpoofMultiAggregate` skeleton: one pass over the shared main input
//! evaluating `k` aggregate programs (paper §5.2 "Multi-Aggregate
//! Operations": `sum(X⊙Y), sum(X⊙Z)` compile to one operator with a shared
//! read of `X`).

use crate::side::SideInput;
use fusedml_core::spoof::{eval_scalar_program, MAggSpec, SideAccess};
use fusedml_linalg::{par, DenseMatrix, Matrix};

/// Executes a MultiAgg operator, returning one 1×1 matrix per aggregate.
pub fn execute(
    spec: &MAggSpec,
    main: Option<&Matrix>,
    sides: &[SideInput],
    scalars: &[f64],
    iter_rows: usize,
    iter_cols: usize,
) -> Vec<Matrix> {
    let k = spec.results.len();
    let identities: Vec<f64> = spec.results.iter().map(|&(_, op)| op.identity()).collect();

    let fold_row_range = |lo: usize, hi: usize| -> Vec<f64> {
        let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
        let mut accs = identities.clone();
        let mut fold_cell = |a: f64, r: usize, c: usize, accs: &mut Vec<f64>| {
            let side_at = |i: usize, acc: SideAccess| sides[i].value_at(acc, r, c);
            eval_scalar_program(&spec.prog, &mut regs, a, 0.0, &side_at, scalars);
            for (j, &(reg, op)) in spec.results.iter().enumerate() {
                accs[j] = op.fold(accs[j], regs[reg as usize]);
            }
        };
        match (main, spec.sparse_safe) {
            (Some(Matrix::Sparse(s)), true) => {
                for r in lo..hi {
                    for (c, v) in s.row_iter(r) {
                        fold_cell(v, r, c, &mut accs);
                    }
                }
            }
            (m, _) => {
                for r in lo..hi {
                    for c in 0..iter_cols {
                        let a = m.map_or(0.0, |mm| mm.get(r, c));
                        fold_cell(a, r, c, &mut accs);
                    }
                }
            }
        }
        accs
    };

    let accs = par::par_map_reduce(
        iter_rows,
        iter_cols.max(1) * 4 * k,
        identities.clone(),
        fold_row_range,
        |mut a, b| {
            for (j, &(_, op)) in spec.results.iter().enumerate() {
                a[j] = op.combine(a[j], b[j]);
            }
            a
        },
    );
    accs.into_iter().map(|v| Matrix::dense(DenseMatrix::filled(1, 1, v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::{Instr, Program};
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::{self, AggDir, AggOp, BinaryOp};

    /// `sum(X⊙Y), sum(X⊙Z)`: two aggregates sharing the main input.
    fn spec() -> MAggSpec {
        MAggSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
                    Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                    Instr::LoadSide { out: 3, side: 1, access: SideAccess::Cell },
                    Instr::Binary { out: 4, op: BinaryOp::Mult, a: 0, b: 3 },
                ],
                n_regs: 5,
                vreg_lens: vec![],
            },
            results: vec![(2, AggOp::Sum), (4, AggOp::Sum)],
            sparse_safe: true,
        }
    }

    #[test]
    fn two_aggregates_match_reference() {
        let x = generate::rand_matrix(60, 50, -1.0, 1.0, 0.2, 1);
        let y = generate::rand_dense(60, 50, -1.0, 1.0, 2);
        let z = generate::rand_dense(60, 50, -1.0, 1.0, 3);
        let outs =
            execute(&spec(), Some(&x), &[SideInput::bind(&y), SideInput::bind(&z)], &[], 60, 50);
        assert_eq!(outs.len(), 2);
        let e1 = ops::agg(&ops::binary(&x, &y, BinaryOp::Mult), AggOp::Sum, AggDir::Full);
        let e2 = ops::agg(&ops::binary(&x, &z, BinaryOp::Mult), AggOp::Sum, AggDir::Full);
        assert!(fusedml_linalg::approx_eq(outs[0].get(0, 0), e1.get(0, 0), 1e-9));
        assert!(fusedml_linalg::approx_eq(outs[1].get(0, 0), e2.get(0, 0), 1e-9));
    }

    #[test]
    fn dense_main_path_agrees_with_sparse() {
        let xd = generate::rand_matrix(40, 40, -1.0, 1.0, 0.3, 4).to_dense();
        let y = generate::rand_dense(40, 40, -1.0, 1.0, 5);
        let z = generate::rand_dense(40, 40, -1.0, 1.0, 6);
        let sides = [SideInput::bind(&y), SideInput::bind(&z)];
        let sx = Matrix::sparse(fusedml_linalg::SparseMatrix::from_dense(&xd));
        let dx = Matrix::dense(xd);
        let a = execute(&spec(), Some(&sx), &sides, &[], 40, 40);
        let b = execute(&spec(), Some(&dx), &sides, &[], 40, 40);
        for (x1, x2) in a.iter().zip(&b) {
            assert!(fusedml_linalg::approx_eq(x1.get(0, 0), x2.get(0, 0), 1e-9));
        }
    }
}
