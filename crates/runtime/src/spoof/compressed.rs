//! Compressed-matrix execution of fused Cell operators (paper §5.2,
//! Figure 9): under the conditions of a *single input* and *sparse-safe
//! operations*, the skeleton calls the generated operator only for the
//! distinct dictionary values of each column group, scaled by their counts —
//! achieving performance "remarkably close to hand-coded CLA operations".

use fusedml_cla::CompressedMatrix;
use fusedml_core::spoof::{eval_scalar_program, CellAgg, CellSpec, SideAccess};
use fusedml_linalg::ops::AggOp;
use fusedml_linalg::{DenseMatrix, Matrix};

/// Whether a Cell spec qualifies for dictionary-only execution: sparse-safe,
/// value-only (no side inputs or position-dependent accesses), and a full
/// aggregation.
pub fn qualifies(spec: &CellSpec, n_sides: usize) -> bool {
    spec.sparse_safe
        && n_sides == 0
        && matches!(spec.agg, CellAgg::FullAgg(_))
        && !spec
            .prog
            .instrs
            .iter()
            .any(|i| matches!(i, fusedml_core::spoof::Instr::LoadSide { .. }))
}

/// Executes a qualifying Cell operator over a compressed matrix via
/// `(value, count)` iteration. Panics if [`qualifies`] is false.
pub fn execute_cell_over_compressed(spec: &CellSpec, cm: &CompressedMatrix) -> Matrix {
    let CellAgg::FullAgg(op) = spec.agg else {
        panic!("dictionary-only execution requires a full aggregation")
    };
    assert!(spec.sparse_safe, "dictionary-only execution requires sparse-safety");
    let side = |_: usize, _: SideAccess| 0.0;
    let mut regs = vec![0.0f64; spec.prog.n_regs as usize];
    let mut acc = op.identity();
    for vc in cm.group_value_counts() {
        for (v, n) in vc {
            eval_scalar_program(&spec.prog, &mut regs, v, 0.0, &side, &[]);
            let out = regs[spec.result as usize];
            match op {
                AggOp::Sum | AggOp::Mean => acc += out * n as f64,
                AggOp::SumSq => acc += out * out * n as f64,
                AggOp::Min => acc = acc.min(out),
                AggOp::Max => acc = acc.max(out),
            }
        }
    }
    if op == AggOp::Mean {
        acc /= (cm.rows() * cm.cols()) as f64;
    }
    Matrix::dense(DenseMatrix::filled(1, 1, acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_cla::compress;
    use fusedml_core::spoof::{Instr, Program};
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::{AggDir, BinaryOp, UnaryOp};

    /// Spec for `sum(X^2)` — the Figure 9 workload.
    fn sum_sq_spec() -> CellSpec {
        CellSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::Binary { out: 1, op: BinaryOp::Mult, a: 0, b: 0 },
                ],
                n_regs: 2,
                vreg_lens: vec![],
            },
            result: 1,
            agg: CellAgg::FullAgg(AggOp::Sum),
            sparse_safe: true,
        }
    }

    #[test]
    fn matches_uncompressed_reference() {
        let x = generate::airline_like(2_000, 8, 12, 5);
        let cm = compress(&x);
        let spec = sum_sq_spec();
        assert!(qualifies(&spec, 0));
        let got = execute_cell_over_compressed(&spec, &cm).get(0, 0);
        let sq = fusedml_linalg::ops::unary(&x, UnaryOp::Pow2);
        let expect = fusedml_linalg::ops::agg(&sq, AggOp::Sum, AggDir::Full).get(0, 0);
        assert!(fusedml_linalg::approx_eq(got, expect, 1e-9));
    }

    #[test]
    fn works_on_sparse_compressed_data() {
        let x = generate::rand_matrix(3_000, 6, 1.0, 3.0, 0.05, 6);
        let cm = compress(&x);
        let got = execute_cell_over_compressed(&sum_sq_spec(), &cm).get(0, 0);
        let expect = fusedml_linalg::ops::agg(&x, AggOp::SumSq, AggDir::Full).get(0, 0);
        assert!(fusedml_linalg::approx_eq(got, expect, 1e-9));
    }

    #[test]
    fn side_inputs_disqualify() {
        let spec = CellSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMain { out: 0 },
                    Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
                    Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                ],
                n_regs: 3,
                vreg_lens: vec![],
            },
            result: 2,
            agg: CellAgg::FullAgg(AggOp::Sum),
            sparse_safe: true,
        };
        assert!(!qualifies(&spec, 1));
        assert!(!qualifies(&spec, 0), "LoadSide in program disqualifies too");
    }

    #[test]
    fn min_max_aggregates_supported() {
        let x = generate::airline_like(1_000, 4, 7, 8);
        let cm = compress(&x);
        for op in [AggOp::Min, AggOp::Max] {
            let spec = CellSpec { agg: CellAgg::FullAgg(op), ..sum_sq_spec() };
            let got = execute_cell_over_compressed(&spec, &cm).get(0, 0);
            let sq = fusedml_linalg::ops::unary(&x, UnaryOp::Pow2);
            let expect = fusedml_linalg::ops::agg(&sq, op, AggDir::Full).get(0, 0);
            assert!(fusedml_linalg::approx_eq(got, expect, 1e-9), "{op:?}");
        }
    }
}
