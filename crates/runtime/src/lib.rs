// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]
//! # fusedml-runtime
//!
//! Execution runtime for fused and basic operators:
//!
//! * [`spoof`] — the hand-coded template skeletons (`SpoofCellwise`,
//!   `SpoofRowwise`, `SpoofMultiAgg`, `SpoofOuterProduct`) that own data
//!   access over dense/sparse/compressed matrices, multi-threading and
//!   aggregation, and invoke the generated register programs per cell/row
//!   (paper §2.2 "Runtime Integration", Figure 4),
//! * [`side`] — side-input access (`getValue(b[i], …)`),
//! * [`handcoded`] — SystemML-style hand-coded fused operators for the
//!   `Fused` baseline (fixed patterns: tak+*, mmchain, wsloss, wdivmm),
//! * [`engine`] — the public execution API: [`EngineBuilder`] → [`Engine`]
//!   (owns the buffer pool, plan/kernel caches, worker pool, stats) →
//!   [`Engine::compile`] → [`CompiledScript`] (`Send + Sync`, executes from
//!   many threads with zero re-optimization),
//! * [`exec`] — execution statistics and the sequential oracle,
//! * [`error`] — typed execution failures ([`ExecError`]) surfaced by the
//!   `try_execute` APIs: panics are contained per run, spill I/O retries
//!   and degrades, and a failed execution leaves the engine fully reusable,
//! * [`schedule`] — the liveness-aware scheduled engine: refcounted value
//!   slots freed at last use, pool-backed buffers, parallel execution of
//!   independent ready operators, and out-of-core execution under a memory
//!   budget (farthest-next-use eviction to the engine's spill tier, async
//!   prefetch of spilled inputs),
//! * [`dist`] — the simulated distributed (Spark-like) backend with
//!   broadcast/shuffle time accounting (DESIGN.md substitution X2),
//! * [`shard`] — the *real* sharded multi-worker runtime (DESIGN.md
//!   substitution X11): persistent NUMA-pinned worker shards, row-partitioned
//!   mains, broadcast side inputs, per-shard partial aggregation with
//!   driver-side merge, and a cost-model-driven local-vs-sharded choice
//!   behind `EngineBuilder::shards`,
//! * [`verify`] — the static plan verifier (DESIGN.md substitution X9): an
//!   IR-invariant checker across the hop, fusion-plan, register-program, and
//!   task-graph layers, plus the residency state-machine spec the debug
//!   scheduler replays its slot-transition traces against. Runs inside
//!   [`Engine::compile`] behind `EngineBuilder::verify_plans`.

pub mod dist;
pub mod engine;
pub mod error;
pub mod exec;
pub mod handcoded;
pub mod schedule;
pub mod shard;
pub mod side;
pub mod spoof;
pub mod verify;

pub use engine::{CompiledScript, Engine, EngineBuilder, Outputs};
pub use error::ExecError;
pub use exec::{ExecStats, SchedSnapshot};
pub use fusedml_core::FusionMode;
pub use fusedml_linalg::fault::{FaultPlan, FaultSite};
pub use shard::{MergeOp, MergePlan, ShardPool, ShardSpec, SideDisp};
pub use verify::VerifyError;
