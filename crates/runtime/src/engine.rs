//! The engine API: **compile once, execute concurrently**.
//!
//! The paper's premise is that fusion-plan optimization is an expensive
//! compile-time investment amortized over many executions (Boehm et al.,
//! VLDB 2018; the costing companion, Boehm 2015, makes the
//! compile-once/run-many assumption explicit). This module makes that split
//! the shape of the public API:
//!
//! * an [`Engine`] (built via [`EngineBuilder`]) owns everything that used
//!   to be implicit or process-wide — the buffer pool, the plan and kernel
//!   caches, scheduler worker limits, optimizer knobs — so two engines with
//!   different configurations coexist in one process;
//! * [`Engine::compile`] runs candidate exploration, costing, code
//!   generation, and task-graph/liveness construction **exactly once**,
//!   returning a [`CompiledScript`];
//! * [`CompiledScript::execute`] is `&self`, `Send + Sync`, and allocates
//!   only per-call state — so one compiled script serves many threads
//!   simultaneously with zero re-optimization;
//! * every `execute` **revalidates** the bound input geometry against the
//!   shapes the plan was costed under, and transparently recompiles (once
//!   per new geometry) when they diverge — trusting a stale plan is the one
//!   thing the API makes impossible.
//!
//! ```
//! use fusedml_hop::interp::bind;
//! use fusedml_hop::DagBuilder;
//! use fusedml_linalg::generate;
//! use fusedml_runtime::{EngineBuilder, FusionMode};
//!
//! // sum(X ⊙ Y): one fused Cell operator under Gen.
//! let mut b = DagBuilder::new();
//! let x = b.read("X", 64, 32, 1.0);
//! let y = b.read("Y", 64, 32, 1.0);
//! let m = b.mult(x, y);
//! let s = b.sum(m);
//! let dag = b.build(vec![s]);
//!
//! let engine = EngineBuilder::new(FusionMode::Gen).workers(2).build();
//! let script = engine.compile(&dag); // exploration/costing/codegen run here, once
//! let out = script.execute(&bind(&[
//!     ("X", generate::rand_dense(64, 32, 0.0, 1.0, 1)),
//!     ("Y", generate::rand_dense(64, 32, 0.0, 1.0, 2)),
//! ]));
//! assert_eq!(out.len(), 1);
//! let _sum = out.scalar(0);
//! ```

use crate::error::{panic_message, ExecError};
use crate::exec::{self, ExecStats, SchedSnapshot};
use crate::handcoded;
use crate::schedule::{self, TaskGraph};
use crate::spoof;
use fusedml_core::codegen::CodegenOptions;
use fusedml_core::opt::{CostModel, EnumConfig};
use fusedml_core::optimizer::{dag_structural_hash, FusionPlan, Optimizer};
use fusedml_core::plancache::{KernelCaches, PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
use fusedml_core::spoof::block::CellBackend;
use fusedml_core::util::LruMap;
use fusedml_core::FusionMode;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::liveness::{self, Liveness};
use fusedml_hop::HopDag;
use fusedml_linalg::fault::FaultPlan;
use fusedml_linalg::matrix::Value;
use fusedml_linalg::pool::{self, BufferPool, PoolHandle, PoolStats};
use fusedml_linalg::spill::{SpillStats, TieredStore};
use fusedml_linalg::Matrix;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Configures and builds an [`Engine`].
///
/// Every knob that used to live in a per-call path or a process-wide static
/// is set here, once, and owned by the built engine: the fusion mode,
/// optimizer configuration (cost model, enumeration, codegen), the
/// inter-operator worker count, the memory budget of the buffer pool, and
/// the plan-cache capacity.
pub struct EngineBuilder {
    mode: FusionMode,
    workers: usize,
    memory_budget: usize,
    pool_buffers_per_class: usize,
    plan_cache_capacity: usize,
    cache_plans: bool,
    model: Option<CostModel>,
    codegen: Option<CodegenOptions>,
    enum_cfg: Option<EnumConfig>,
    spill_threshold: Option<usize>,
    spill_dir: Option<PathBuf>,
    prefetch_depth: usize,
    faults: Option<Arc<FaultPlan>>,
    verify_plans: bool,
    tile_width: usize,
    cell_backend: CellBackend,
    shards: usize,
    shard_threads: usize,
    force_shard: bool,
}

impl EngineBuilder {
    /// Starts a builder for the given fusion mode with default limits
    /// (4 scheduler workers, 1 GiB pool budget, 1024-operator plan cache).
    pub fn new(mode: FusionMode) -> Self {
        EngineBuilder {
            mode,
            workers: schedule::DEFAULT_MAX_WORKERS,
            memory_budget: 1 << 30,
            pool_buffers_per_class: 32,
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            cache_plans: true,
            model: None,
            codegen: None,
            enum_cfg: None,
            spill_threshold: None,
            spill_dir: None,
            prefetch_depth: schedule::DEFAULT_PREFETCH_DEPTH,
            faults: None,
            verify_plans: cfg!(debug_assertions),
            tile_width: fusedml_core::spoof::block::DEFAULT_TILE_WIDTH,
            cell_backend: CellBackend::default(),
            shards: 1,
            shard_threads: 0,
            force_shard: false,
        }
    }

    /// Number of persistent worker shards for sharded fused-operator
    /// execution (DESIGN.md substitution X11). `1` (the default) disables
    /// sharding entirely; `>= 2` spawns that many NUMA-pinned shard workers
    /// at build time, and the planner then chooses local vs sharded per
    /// fused operator with the same cost model `dist::simulate` uses. Small
    /// operators keep running locally regardless of this knob.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Intra-shard kernel threads (row-band parallelism *inside* each worker
    /// shard). `0` (the default) auto-sizes to `available_parallelism /
    /// shards`, floored at 1, so shards split the machine instead of
    /// oversubscribing it.
    pub fn shard_threads(mut self, n: usize) -> Self {
        self.shard_threads = n;
        self
    }

    /// Shards every legally-shardable fused operator regardless of the cost
    /// model's local-vs-sharded verdict. For differential tests that must
    /// exercise the sharded data path on matrices far too small for sharding
    /// to ever win on cost; production callers should leave this off.
    pub fn force_shard(mut self, on: bool) -> Self {
        self.force_shard = on;
        self
    }

    /// Enables or disables static plan verification inside
    /// [`Engine::compile`]: every compiled artifact (hop DAG, fusion plan,
    /// register programs, task graph) is checked against the IR-invariant
    /// catalogue (DESIGN.md substitution X9) before it can execute, and a
    /// violation surfaces as a typed [`crate::verify::VerifyError`].
    ///
    /// Defaults to **on in debug builds, off in release** — verification is
    /// compile-path-only (executing a compiled script never re-verifies),
    /// but release users who want the guarantee opt in here.
    pub fn verify_plans(mut self, on: bool) -> Self {
        self.verify_plans = on;
        self
    }

    /// Caps inter-operator scheduler workers (kernels keep their internal
    /// row-band parallelism on top of this).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// The engine's memory budget in bytes: the retention cap of the buffer
    /// pool *and* (unless overridden by [`EngineBuilder::spill_threshold`])
    /// the resident-bytes budget the scheduler enforces by spilling cold
    /// values to disk — a real contract, not advice.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Overrides the resident-bytes threshold above which the scheduler
    /// evicts cold values to the spill tier (defaults to the memory budget;
    /// `usize::MAX` disables spilling entirely).
    pub fn spill_threshold(mut self, bytes: usize) -> Self {
        self.spill_threshold = Some(bytes);
        self
    }

    /// Directory for the engine's spill files (default: the OS temp dir).
    /// A uniquely named subdirectory is created on first spill and removed,
    /// with any remaining files, when the engine drops.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Bounds queued/in-flight asynchronous spill-reload jobs per execution
    /// (beyond it, consumers fault their inputs back synchronously).
    pub fn prefetch_depth(mut self, n: usize) -> Self {
        self.prefetch_depth = n;
        self
    }

    /// Installs a deterministic fault-injection plan (chaos testing): the
    /// scheduler and spill tier consult it at every injectable site
    /// ([`fusedml_linalg::fault::FaultSite`]). Keep a clone of the `Arc` to
    /// [`FaultPlan::disarm`] it or read its injection counters. Production
    /// engines leave this unset.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Buffers retained per power-of-two size class in the pool.
    pub fn pool_buffers_per_class(mut self, n: usize) -> Self {
        self.pool_buffers_per_class = n.max(1);
        self
    }

    /// Maximum distinct compiled operators retained by the plan cache.
    pub fn plan_cache_capacity(mut self, n: usize) -> Self {
        self.plan_cache_capacity = n.max(1);
        self
    }

    /// Enables or disables fusion-plan caching (disabled = re-optimize on
    /// every call, as in the compilation-overhead experiments).
    pub fn cache_plans(mut self, on: bool) -> Self {
        self.cache_plans = on;
        self
    }

    /// Tile width of the block-vectorized cell backends (clamped to
    /// 8..=8192). Per-engine configuration — formerly a process global.
    pub fn tile_width(mut self, w: usize) -> Self {
        self.tile_width = fusedml_core::spoof::block::clamp_tile_width(w);
        self
    }

    /// Selects the cell-program execution backend for this engine's fused
    /// operators: `Scalar` (interpreter oracle), `Block` (generic tiles),
    /// `BlockFast` (closure-specialized product chains), or `Mono` (default:
    /// closure specialization plus whole-program monomorphized kernels).
    pub fn cell_backend(mut self, b: CellBackend) -> Self {
        self.cell_backend = b;
        self
    }

    /// Overrides the optimizer's cost model.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Overrides code-generation options (inlining, code-size budget, …).
    pub fn codegen_options(mut self, opts: CodegenOptions) -> Self {
        self.codegen = Some(opts);
        self
    }

    /// Overrides the enumeration configuration (`MPSkipEnum` knobs).
    pub fn enum_config(mut self, cfg: EnumConfig) -> Self {
        self.enum_cfg = Some(cfg);
        self
    }

    /// Builds the engine: allocates its buffer pool, kernel caches, plan
    /// cache, optimizer, and statistics.
    pub fn build(self) -> Engine {
        let kernels =
            KernelCaches::with_config(self.plan_cache_capacity, self.tile_width, self.cell_backend);
        let plan_cache =
            Arc::new(PlanCache::with_kernels(Arc::clone(&kernels), self.plan_cache_capacity));
        let mut optimizer = Optimizer::with_plan_cache(self.mode, plan_cache);
        if let Some(m) = self.model {
            optimizer.model = m;
        }
        if let Some(c) = self.codegen {
            optimizer.codegen = c;
        }
        if let Some(e) = self.enum_cfg {
            optimizer.enum_cfg = e;
        }
        let pool: PoolHandle =
            Arc::new(BufferPool::with_limits(self.memory_budget, self.pool_buffers_per_class));
        let mut store = TieredStore::new(
            Arc::clone(&pool),
            self.spill_threshold.unwrap_or(self.memory_budget),
            self.spill_dir,
        );
        if let Some(f) = &self.faults {
            store = store.with_faults(Arc::clone(f));
        }
        let shard_pool = if self.shards >= 2 {
            let threads = if self.shard_threads == 0 {
                let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                (avail / self.shards).max(1)
            } else {
                self.shard_threads
            };
            Some(crate::shard::ShardPool::new(
                self.shards,
                threads,
                Arc::clone(&pool),
                Arc::clone(&kernels),
            ))
        } else {
            None
        };
        Engine {
            inner: Arc::new(EngineInner {
                mode: self.mode,
                optimizer,
                kernels,
                pool,
                store,
                stats: Arc::new(ExecStats::default()),
                workers: self.workers,
                prefetch_depth: self.prefetch_depth,
                faults: self.faults,
                verify_plans: self.verify_plans,
                shard_pool,
                force_shard: self.force_shard,
                cache_plans: AtomicBool::new(self.cache_plans),
                compile_lock: Mutex::new(()),
                plans: Mutex::new(LruMap::new(self.plan_cache_capacity)),
                scripts: Mutex::new(LruMap::new(self.plan_cache_capacity)),
            }),
        }
    }
}

/// Maximum geometry-revalidation variants retained per compiled script;
/// beyond this, the oldest variant is dropped (recompiled on demand if that
/// geometry ever returns). Bounds long-running servers with churning batch
/// sizes.
const MAX_GEOMETRY_VARIANTS: usize = 16;

/// Everything one engine owns. Shared behind an `Arc` by the [`Engine`]
/// handle and every [`CompiledScript`] it produces.
struct EngineInner {
    mode: FusionMode,
    optimizer: Optimizer,
    kernels: Arc<KernelCaches>,
    pool: PoolHandle,
    /// The two-tier store: the buffer pool above plus the engine-owned spill
    /// tier (budgeted temp files; the directory dies with the engine).
    store: TieredStore,
    stats: Arc<ExecStats>,
    workers: usize,
    prefetch_depth: usize,
    /// Deterministic chaos harness consulted at every injectable site;
    /// `None` in production engines.
    faults: Option<Arc<FaultPlan>>,
    /// Run the static plan verifier on every cold compile (and geometry
    /// recompile). Compile-path-only cost; see `EngineBuilder::verify_plans`.
    verify_plans: bool,
    /// Persistent sharded execution workers (`EngineBuilder::shards >= 2`),
    /// or `None` when sharding is disabled. Shard workers live as long as
    /// the engine; per-operator local-vs-sharded choices are planned at
    /// compile time against this pool's size.
    shard_pool: Option<crate::shard::ShardPool>,
    /// Shard every legally-shardable operator, skipping the cost comparison
    /// (`EngineBuilder::force_shard`; differential-test hook).
    force_shard: bool,
    cache_plans: AtomicBool,
    /// Serializes cold script compilation so N threads racing on the same
    /// uncached DAG run the optimizer once (the "exactly once" contract
    /// holds even for a cold start; cached lookups never take this lock).
    compile_lock: Mutex<()>,
    /// Fusion plans per structural DAG hash (SystemML's runtime-program
    /// cache across dynamic recompilations) — per engine, not per process,
    /// and bounded by the plan-cache capacity.
    plans: Mutex<LruMap<Arc<FusionPlan>>>,
    /// Compiled scripts per structural DAG hash (bounded likewise), so the
    /// convenience [`Engine::execute`] also amortizes task-graph
    /// construction.
    scripts: Mutex<LruMap<Arc<ScriptInner>>>,
}

/// A thread-safe, cheaply clonable handle to an execution engine.
///
/// The engine owns what was previously implicit global state: the buffer
/// pool, the plan/kernel caches, the optimizer and its statistics, and the
/// scheduler worker limit. Two engines with different configurations
/// coexist in one process without sharing anything.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// An engine with default configuration for the given mode
    /// (equivalent to `EngineBuilder::new(mode).build()`).
    pub fn new(mode: FusionMode) -> Self {
        EngineBuilder::new(mode).build()
    }

    /// Starts a configuration builder.
    pub fn builder(mode: FusionMode) -> EngineBuilder {
        EngineBuilder::new(mode)
    }

    /// The engine's fusion mode.
    pub fn mode(&self) -> FusionMode {
        self.inner.mode
    }

    /// Shared execution statistics (accumulated across all scripts and
    /// threads of this engine).
    pub fn stats(&self) -> &ExecStats {
        &self.inner.stats
    }

    /// A clonable handle to the shared statistics.
    pub fn stats_handle(&self) -> Arc<ExecStats> {
        Arc::clone(&self.inner.stats)
    }

    /// The optimizer (cost model, codegen options, codegen statistics).
    pub fn optimizer(&self) -> &Optimizer {
        &self.inner.optimizer
    }

    /// The engine-owned plan cache (generated operators keyed by CPlan).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.inner.optimizer.plan_cache
    }

    /// The engine-owned lowered-kernel caches.
    pub fn kernel_caches(&self) -> &Arc<KernelCaches> {
        &self.inner.kernels
    }

    /// The engine-owned buffer pool.
    pub fn pool(&self) -> &PoolHandle {
        &self.inner.pool
    }

    /// Buffer-pool counters (hits/misses/returns/drops/retained bytes).
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// The engine-owned two-tier store (buffer pool + spill tier).
    pub fn store(&self) -> &TieredStore {
        &self.inner.store
    }

    /// Spill-tier counters (values and bytes spilled/reloaded).
    pub fn spill_stats(&self) -> SpillStats {
        self.inner.store.stats()
    }

    /// The engine's spill directory, if anything has spilled yet. The
    /// directory and its files are removed when the engine drops.
    pub fn spill_dir(&self) -> Option<PathBuf> {
        self.inner.store.spill_dir()
    }

    /// The configured inter-operator worker cap.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// The number of live worker shards (1 when sharding is disabled; see
    /// [`EngineBuilder::shards`]).
    pub fn shards(&self) -> usize {
        self.inner.shard_count()
    }

    /// The installed fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.inner.faults.as_ref()
    }

    /// Whether this engine statically verifies compiled plans (see
    /// `EngineBuilder::verify_plans`).
    pub fn verify_plans(&self) -> bool {
        self.inner.verify_plans
    }

    /// Whether fusion plans (and compiled scripts) are cached.
    pub fn plan_caching(&self) -> bool {
        self.inner.cache_plans.load(Ordering::Relaxed)
    }

    /// Enables or disables fusion-plan caching at runtime.
    pub fn set_plan_caching(&self, on: bool) {
        self.inner.cache_plans.store(on, Ordering::Relaxed);
    }

    /// Installs this engine's buffer pool and kernel caches on the current
    /// thread until the returned guard drops. Driver loops that recycle
    /// values or update buffers *between* `execute` calls (e.g. iterative
    /// algorithms retiring dead intermediates) hold a scope so those
    /// buffers land back in — and are served from — this engine's pool.
    pub fn scope(&self) -> EngineScope {
        EngineScope {
            _pool: pool::enter(&self.inner.pool),
            _kernels: spoof::enter_kernels(&self.inner.kernels),
        }
    }

    /// Returns a dying value's buffers to this engine's pool (shorthand for
    /// recycling under [`Engine::scope`]).
    pub fn recycle(&self, v: Value) {
        let _scope = pool::enter(&self.inner.pool);
        v.recycle();
    }

    /// Compiles a DAG into a [`CompiledScript`]: exploration, costing, code
    /// generation, hand-coded pattern matching, liveness analysis, and task
    /// graph construction all happen here — **exactly once**. The returned
    /// script is `Send + Sync` and executes from any number of threads.
    /// Panics if the plan verifier rejects the compiled artifact (see
    /// [`Engine::try_compile`] for the fallible form).
    pub fn compile(&self, dag: &HopDag) -> CompiledScript {
        self.try_compile(dag).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`Engine::compile`]: when
    /// `EngineBuilder::verify_plans` is on and the static verifier rejects
    /// the compiled artifact, the violation comes back as a typed
    /// [`ExecError::Verify`] instead of a panic. Nothing is cached on
    /// rejection — a rejected artifact can never execute.
    pub fn try_compile(&self, dag: &HopDag) -> Result<CompiledScript, ExecError> {
        let key = dag_structural_hash(dag);
        if self.plan_caching() {
            if let Some(s) = self.inner.scripts.lock().get(key) {
                return Ok(CompiledScript { engine: self.clone(), inner: Arc::clone(s) });
            }
        }
        // Cold compile: serialize, and re-probe the cache once the lock is
        // held — a racing thread may have just compiled this DAG.
        let _cold = self.inner.compile_lock.lock();
        if self.plan_caching() {
            if let Some(s) = self.inner.scripts.lock().get(key) {
                return Ok(CompiledScript { engine: self.clone(), inner: Arc::clone(s) });
            }
        }
        let inner = Arc::new(self.inner.compile_script(dag)?);
        if self.plan_caching() {
            self.inner.scripts.lock().insert(key, Arc::clone(&inner));
        }
        Ok(CompiledScript { engine: self.clone(), inner })
    }

    /// Convenience: compile (cached by DAG structure) and execute in one
    /// call. Repeated calls with the same DAG shape hit the script cache and
    /// perform zero re-optimization. Panics on failure; see
    /// [`Engine::try_execute`] for the fallible form.
    pub fn execute(&self, dag: &HopDag, bindings: &Bindings) -> Outputs {
        self.compile(dag).execute(bindings)
    }

    /// Fallible twin of [`Engine::execute`]: failures come back as a typed
    /// [`ExecError`] and leave the engine fully reusable (see
    /// [`CompiledScript::try_execute`]).
    pub fn try_execute(&self, dag: &HopDag, bindings: &Bindings) -> Result<Outputs, ExecError> {
        self.try_compile(dag)?.try_execute(bindings)
    }

    /// Executes a DAG sequentially with the retained seed-era paths (the
    /// reference interpreter for `Base`, the demand-driven hand-coded
    /// interpreter for `Fused`, the recursive materializer for Gen modes) —
    /// the oracle the scheduled engine is differentially tested against.
    pub fn execute_sequential(&self, dag: &HopDag, bindings: &Bindings) -> Vec<Value> {
        let inner = &self.inner;
        let _pool = pool::enter(&inner.pool);
        let _kern = spoof::enter_kernels(&inner.kernels);
        match inner.mode {
            FusionMode::Base => interp::interpret(dag, bindings),
            FusionMode::Fused => handcoded::interpret(dag, bindings, &inner.stats),
            _ => {
                let plan = self.plan_for(dag);
                exec::plan_sequential(dag, &plan, bindings, &inner.stats)
            }
        }
    }

    /// Returns the (possibly cached) fusion plan for a DAG.
    pub fn plan_for(&self, dag: &HopDag) -> Arc<FusionPlan> {
        self.inner.plan_for(dag)
    }

    /// Executes a DAG under an explicit fusion plan through the scheduled
    /// engine. The plan is revalidated: when it was optimized for a
    /// different DAG geometry, it is discarded and the DAG re-optimized —
    /// the costed operators' iteration spaces would otherwise be stale.
    pub fn execute_with_plan(
        &self,
        dag: &HopDag,
        plan: &FusionPlan,
        bindings: &Bindings,
    ) -> Vec<Value> {
        self.try_execute_with_plan(dag, plan, bindings).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`Engine::execute_with_plan`]: binding defects and
    /// runtime failures come back as a typed [`ExecError`] instead of
    /// panicking, and the engine stays reusable after any of them.
    pub fn try_execute_with_plan(
        &self,
        dag: &HopDag,
        plan: &FusionPlan,
        bindings: &Bindings,
    ) -> Result<Vec<Value>, ExecError> {
        interp::validate_bindings(dag, bindings)?;
        let replacement = self.inner.revalidate(dag, plan);
        let plan: &FusionPlan = replacement.as_deref().unwrap_or(plan);
        let graph = schedule::prepare(dag, Some(plan), None);
        let inner = &self.inner;
        let result = schedule::run(&graph, dag, Some(plan), bindings, &inner.exec_ctx());
        inner.pool.advance_epoch();
        Ok(result?.0)
    }

    /// The sequential twin of [`Engine::execute_with_plan`] (same
    /// revalidation guard, seed-era recursive materializer).
    pub fn execute_with_plan_sequential(
        &self,
        dag: &HopDag,
        plan: &FusionPlan,
        bindings: &Bindings,
    ) -> Vec<Value> {
        let replacement = self.inner.revalidate(dag, plan);
        let plan: &FusionPlan = replacement.as_deref().unwrap_or(plan);
        let inner = &self.inner;
        let _pool = pool::enter(&inner.pool);
        let _kern = spoof::enter_kernels(&inner.kernels);
        exec::plan_sequential(dag, plan, bindings, &inner.stats)
    }
}

impl EngineInner {
    /// The execution context handed to the scheduler: this engine's stats,
    /// two-tier store, kernel caches, and worker/prefetch limits.
    fn exec_ctx(&self) -> schedule::ExecCtx<'_> {
        schedule::ExecCtx {
            stats: &self.stats,
            max_workers: self.workers,
            store: &self.store,
            kernels: &self.kernels,
            prefetch_depth: self.prefetch_depth,
            faults: self.faults.as_ref(),
            shards: self.shard_pool.as_ref(),
        }
    }

    /// The engine's shard pool size (1 when sharding is disabled).
    fn shard_count(&self) -> usize {
        self.shard_pool.as_ref().map_or(1, crate::shard::ShardPool::len)
    }

    fn plan_for(&self, dag: &HopDag) -> Arc<FusionPlan> {
        if !self.cache_plans.load(Ordering::Relaxed) {
            return Arc::new(self.optimizer.optimize(dag));
        }
        let key = dag_structural_hash(dag);
        if let Some(p) = self.plans.lock().get(key) {
            return Arc::clone(p);
        }
        let p = Arc::new(self.optimizer.optimize(dag));
        self.plans.lock().insert(key, Arc::clone(&p));
        p
    }

    /// The shape-revalidation guard for explicitly supplied plans: `None`
    /// when the plan matches the DAG's geometry (use it as-is, no copy),
    /// otherwise the re-optimized replacement (counted as a recompile).
    fn revalidate(&self, dag: &HopDag, plan: &FusionPlan) -> Option<Arc<FusionPlan>> {
        if plan.matches(dag) {
            None
        } else {
            self.stats.plan_recompiles.fetch_add(1, Ordering::Relaxed);
            Some(self.plan_for(dag))
        }
    }

    /// Compiles one geometry variant: plan / patterns / task graph /
    /// liveness facts (per variant, so they always describe the geometry
    /// that actually executes). With `verify_plans` on, the compiled
    /// artifact is statically verified before it is allowed to exist —
    /// cold compiles and geometry recompiles only, never the execute path.
    fn compile_variant(&self, dag: HopDag) -> Result<ScriptVariant, crate::verify::VerifyError> {
        let (plan, patterns) = match self.mode {
            FusionMode::Base => (None, None),
            FusionMode::Fused => (None, Some(handcoded::match_patterns(&dag))),
            _ => (Some(self.plan_for(&dag)), None),
        };
        let mut graph = schedule::prepare(&dag, plan.as_deref(), patterns.as_ref());
        if let (Some(pool), Some(plan)) = (&self.shard_pool, plan.as_deref()) {
            // Per-operator local-vs-sharded choice, planned once at compile
            // time with the same estimator `dist::simulate` uses.
            let specs = if self.force_shard {
                crate::shard::force_shards(plan, pool.len())
            } else {
                crate::shard::plan_shards(&dag, plan, pool.len(), &self.optimizer.model)
            };
            graph.set_shard_specs(&specs);
        }
        let shapes = dag.input_shapes();
        let liveness = liveness::analyze(&dag);
        if self.verify_plans {
            crate::verify::verify_compiled(&dag, plan.as_deref(), &graph, &liveness)?;
        }
        Ok(ScriptVariant { shapes, dag, plan, graph, liveness })
    }

    fn compile_script(&self, dag: &HopDag) -> Result<ScriptInner, crate::verify::VerifyError> {
        let base = Arc::new(self.compile_variant(dag.clone())?);
        let input_names = base.shapes.iter().map(|(n, _, _)| n.clone()).collect();
        Ok(ScriptInner {
            base,
            variants: Mutex::new(Vec::new()),
            recompiles: AtomicUsize::new(0),
            input_names,
        })
    }
}

/// One compiled geometry of a script: the DAG (sizes as costed), its fusion
/// plan or hand-coded patterns, and the prepared task graph.
struct ScriptVariant {
    /// `(name, rows, cols)` of every live input, sorted — the geometry this
    /// variant was costed under.
    shapes: Vec<(String, usize, usize)>,
    dag: HopDag,
    plan: Option<Arc<FusionPlan>>,
    graph: TaskGraph,
    /// Liveness facts for this variant's DAG, computed once at compile.
    liveness: Liveness,
}

/// The shared immutable state of a compiled script.
struct ScriptInner {
    /// The variant compiled for the DAG's declared geometry.
    base: Arc<ScriptVariant>,
    /// Geometry-revalidated recompiles (one per distinct bound geometry,
    /// FIFO-bounded at [`MAX_GEOMETRY_VARIANTS`]).
    variants: Mutex<Vec<Arc<ScriptVariant>>>,
    /// Total geometry recompiles this script performed (monotonic — unlike
    /// `variants.len()`, eviction never decrements it).
    recompiles: AtomicUsize,
    /// Live input names (sorted), for the per-execute geometry probe.
    input_names: Vec<String>,
}

/// A compiled, reusable, thread-safe execution plan for one DAG.
///
/// Produced by [`Engine::compile`]. `execute` takes `&self` and allocates
/// only per-call state, so the same script can run from many threads
/// simultaneously — all of them sharing the engine's buffer pool, kernel
/// caches, and statistics, and none of them re-running the optimizer.
///
/// Every call revalidates the bound input geometry against the shapes the
/// plan was costed under. On divergence the script transparently recompiles
/// for the new geometry (once — each distinct geometry is cached) instead of
/// trusting the stale plan.
#[derive(Clone)]
pub struct CompiledScript {
    engine: Engine,
    inner: Arc<ScriptInner>,
}

impl CompiledScript {
    /// Executes the compiled script over bound inputs, returning the root
    /// values plus this call's scheduler delta. Thread-safe: `&self`, no
    /// re-optimization. Panics on failure; see
    /// [`CompiledScript::try_execute`] for the fallible form.
    pub fn execute(&self, bindings: &Bindings) -> Outputs {
        self.try_execute(bindings).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`CompiledScript::execute`]: every failure — a
    /// missing or mis-shaped binding, a worker panic, exhausted spill-I/O
    /// retries, an injected fault — comes back as a typed [`ExecError`].
    ///
    /// Failures are *contained*: the scheduler cancels pending tasks, drains
    /// in-flight ones, returns every pooled buffer, and discards the run's
    /// spill files, so the engine (and this script) execute correctly
    /// afterwards, and concurrent executions on sibling threads are never
    /// affected.
    pub fn try_execute(&self, bindings: &Bindings) -> Result<Outputs, ExecError> {
        for name in &self.inner.input_names {
            if bindings.get(name).is_none() {
                return Err(ExecError::UnboundInput { name: name.clone() });
            }
        }
        // Geometry revalidation recompiles for reshaped inputs; a geometry
        // the size propagator rejects outright (mutually inconsistent
        // shapes) panics inside compilation — contain that too. A verifier
        // rejection of the recompiled variant surfaces as a typed error.
        let v =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.variant_for(bindings)))
                .map_err(|p| ExecError::WorkerPanic {
                    op: "geometry revalidation".to_string(),
                    message: panic_message(p.as_ref()),
                })??;
        interp::validate_bindings(&v.dag, bindings)?;
        let e = &self.engine.inner;
        let result = schedule::run(&v.graph, &v.dag, v.plan.as_deref(), bindings, &e.exec_ctx());
        // Epoch-bound the engine pool: buffers unused for a few DAGs retire.
        e.pool.advance_epoch();
        let (values, sched) = result?;
        Ok(Outputs { values, sched })
    }

    /// Executes sequentially with the retained seed-era oracle paths (same
    /// revalidation guard; used by differential tests).
    pub fn execute_sequential(&self, bindings: &Bindings) -> Vec<Value> {
        let v = self.variant_for(bindings).unwrap_or_else(|e| panic!("{e}"));
        let e = &self.engine.inner;
        let _pool = pool::enter(&e.pool);
        let _kern = spoof::enter_kernels(&e.kernels);
        match e.mode {
            FusionMode::Base => interp::interpret(&v.dag, bindings),
            FusionMode::Fused => handcoded::interpret(&v.dag, bindings, &e.stats),
            _ => exec::plan_sequential(
                &v.dag,
                v.plan.as_deref().expect("codegen mode implies a plan"),
                bindings,
                &e.stats,
            ),
        }
    }

    /// The engine this script was compiled by.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The DAG as compiled (sizes of the declared geometry).
    pub fn dag(&self) -> &HopDag {
        &self.inner.base.dag
    }

    /// The fusion plan of the declared geometry (`None` for `Base`/`Fused`).
    pub fn plan(&self) -> Option<&Arc<FusionPlan>> {
        self.inner.base.plan.as_ref()
    }

    /// Liveness facts of the declared geometry, computed once at compile
    /// time (consumer counts, last-use positions, ready-set levels).
    pub fn liveness(&self) -> &Liveness {
        &self.inner.base.liveness
    }

    /// The input geometry this script was costed under, sorted by name.
    pub fn input_shapes(&self) -> &[(String, usize, usize)] {
        &self.inner.base.shapes
    }

    /// Number of geometry-revalidation recompiles this script performed
    /// (monotonic; evicted variants that recompile on return count again).
    pub fn recompiled_variants(&self) -> usize {
        self.inner.recompiles.load(Ordering::Relaxed)
    }

    /// An explain-style rendering of the compiled plan.
    pub fn explain(&self) -> String {
        match &self.inner.base.plan {
            Some(p) => p.explain(),
            None => format!("{:?} (no generated operators)\n", self.engine.mode()),
        }
    }

    /// Resolves the variant matching the bound geometry: the base plan when
    /// shapes agree, a cached recompile otherwise — compiling one on first
    /// divergence (the shape-revalidation guard). Errs only when the plan
    /// verifier rejects a freshly recompiled variant.
    fn variant_for(
        &self,
        bindings: &Bindings,
    ) -> Result<Arc<ScriptVariant>, crate::verify::VerifyError> {
        // Fast path: compare the bound geometry against the costed shapes
        // in place — zero allocation on the (overwhelmingly common) case
        // that nothing changed. A missing binding falls through to
        // `bound_shapes`, which panics with the interpreter's message.
        let base = &self.inner.base;
        let matches_base = base.shapes.iter().all(|(name, rows, cols)| {
            bindings.get(name).is_some_and(|m| m.rows() == *rows && m.cols() == *cols)
        });
        if matches_base {
            return Ok(Arc::clone(base));
        }
        let shapes = interp::bound_shapes(bindings, &self.inner.input_names);
        {
            let variants = self.inner.variants.lock();
            if let Some(v) = variants.iter().find(|v| v.shapes == shapes) {
                return Ok(Arc::clone(v));
            }
        }
        // Geometry diverged from the costed plan: re-propagate sizes and
        // recompile for the bound shapes. Reads whose shape changed are
        // re-probed for their *actual* bound sparsity (the structural hash
        // includes sparsity, so the plan cache keeps data profiles apart);
        // revalidation is deliberately shape-only — same-shape sparsity
        // drift keeps the costed plan. Compilation runs *outside*
        // the variants lock so concurrent executes on cached geometries are
        // never stalled behind an optimizer run; a racing thread may compile
        // the same variant, and the loser's copy is simply dropped below.
        let mut geometry: HashMap<String, (usize, usize, f64)> = HashMap::new();
        for ((name, rows, cols), (bname, brows, bcols)) in base.shapes.iter().zip(&shapes) {
            debug_assert_eq!(name, bname, "sorted shape lists align");
            if (rows, cols) != (brows, bcols) {
                let sp =
                    bindings.get(name).map(Matrix::sparsity).unwrap_or(1.0).max(f64::MIN_POSITIVE);
                geometry.insert(name.clone(), (*brows, *bcols, sp));
            }
        }
        let reshaped = base.dag.with_read_geometry(&geometry);
        let v = Arc::new(self.engine.inner.compile_variant(reshaped)?);
        let mut variants = self.inner.variants.lock();
        if let Some(existing) = variants.iter().find(|x| x.shapes == shapes) {
            return Ok(Arc::clone(existing)); // lost the race; drop our copy
        }
        self.engine.inner.stats.plan_recompiles.fetch_add(1, Ordering::Relaxed);
        self.inner.recompiles.fetch_add(1, Ordering::Relaxed);
        if variants.len() >= MAX_GEOMETRY_VARIANTS {
            variants.remove(0); // FIFO: oldest geometry recompiles if it returns
        }
        variants.push(Arc::clone(&v));
        Ok(v)
    }
}

/// RAII guard installing an engine's pool and kernel caches on the current
/// thread (see [`Engine::scope`]).
pub struct EngineScope {
    _pool: pool::PoolScope,
    _kernels: spoof::KernelScope,
}

/// The result of one `execute` call: the root values (in root order) plus
/// the call's scheduler event delta.
#[derive(Debug)]
pub struct Outputs {
    values: Vec<Value>,
    sched: SchedSnapshot,
}

impl Outputs {
    /// The root values in root order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the outputs, moving the root values out (never cloned).
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// The `i`-th root value.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// The `i`-th root as a scalar (panics if it is a larger matrix).
    pub fn scalar(&self, i: usize) -> f64 {
        self.values[i].as_scalar()
    }

    /// The `i`-th root as a matrix (scalars promote to 1×1).
    pub fn matrix(&self, i: usize) -> Matrix {
        self.values[i].as_matrix()
    }

    /// This call's scheduler delta (peak bytes, pool hits, parallel ops, …).
    pub fn sched(&self) -> SchedSnapshot {
        self.sched
    }

    /// Iterates the root values in root order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl std::ops::Index<usize> for Outputs {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl IntoIterator for Outputs {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<'a> IntoIterator for &'a Outputs {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

// `Engine` and `CompiledScript` must stay usable across threads; this fails
// to compile if a non-Sync field ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<CompiledScript>();
    assert_send_sync::<Outputs>();
};
