//! The DAG executor: runs a HOP DAG under a fusion mode, dispatching
//! between basic operators (the `Base` interpreter), hand-coded fused
//! operators (`Fused`), and generated fused operators (`Gen`/`Gen-FA`/
//! `Gen-FNR`).
//!
//! Execution goes through the scheduled engine ([`crate::schedule`]):
//! liveness-refcounted value slots freed at last use, buffers drawn from and
//! returned to the shared pool, and independent ready operators executed in
//! parallel. The seed's recursive lazy materializer is retained as
//! [`Executor::execute_with_plan_sequential`] — the differential-test oracle
//! (scheduled results must be bitwise-equal to it).

use crate::handcoded;
use crate::schedule;
use crate::side::SideInput;
use crate::spoof;
use fusedml_core::optimizer::{FusedOperator, FusionPlan, Optimizer};
use fusedml_core::util::FxHashMap;
use fusedml_core::FusionMode;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::{HopDag, HopId};
use fusedml_linalg::matrix::Value;
use fusedml_linalg::pool;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Execution statistics, including scheduler events (operators executed
/// while another was in flight, buffer-pool hits/misses, bytes freed before
/// the DAG finished, and the tracked peak footprint of the last execution).
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Generated fused operators executed.
    pub fused_ops: AtomicUsize,
    /// Hand-coded fused operators executed.
    pub handcoded_ops: AtomicUsize,
    /// Basic operators executed.
    pub basic_ops: AtomicUsize,
    /// Operators that started while at least one other was still running.
    pub sched_parallel_ops: AtomicUsize,
    /// Bytes of intermediates freed before the end of their DAG.
    pub sched_bytes_freed_early: AtomicUsize,
    /// Tracked peak resident bytes of the most recent execution.
    pub sched_peak_bytes: AtomicUsize,
    /// Hold-everything resident bytes of the most recent execution (inputs +
    /// every materialized value, nothing freed) — what the seed runtime kept.
    pub sched_resident_all_bytes: AtomicUsize,
    /// Buffer-pool hits attributed to this executor's runs.
    pub pool_hits: AtomicUsize,
    /// Buffer-pool misses attributed to this executor's runs.
    pub pool_misses: AtomicUsize,
}

/// Plain-data snapshot of the scheduler counters in [`ExecStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    pub parallel_ops: usize,
    pub bytes_freed_early: usize,
    pub peak_bytes: usize,
    pub resident_all_bytes: usize,
    pub pool_hits: usize,
    pub pool_misses: usize,
}

impl SchedSnapshot {
    /// Fraction of pooled allocations served from the pool.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Hold-everything bytes over tracked peak (≥ 1: how much smaller the
    /// liveness-aware footprint is than the seed behaviour).
    pub fn footprint_reduction(&self) -> f64 {
        if self.peak_bytes == 0 {
            1.0
        } else {
            self.resident_all_bytes as f64 / self.peak_bytes as f64
        }
    }
}

impl ExecStats {
    pub fn snapshot(&self) -> (usize, usize, usize) {
        (
            self.fused_ops.load(Ordering::Relaxed),
            self.handcoded_ops.load(Ordering::Relaxed),
            self.basic_ops.load(Ordering::Relaxed),
        )
    }

    /// Scheduler-event counters (see [`SchedSnapshot`]).
    pub fn scheduler_snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            parallel_ops: self.sched_parallel_ops.load(Ordering::Relaxed),
            bytes_freed_early: self.sched_bytes_freed_early.load(Ordering::Relaxed),
            peak_bytes: self.sched_peak_bytes.load(Ordering::Relaxed),
            resident_all_bytes: self.sched_resident_all_bytes.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.fused_ops.store(0, Ordering::Relaxed);
        self.handcoded_ops.store(0, Ordering::Relaxed);
        self.basic_ops.store(0, Ordering::Relaxed);
        self.sched_parallel_ops.store(0, Ordering::Relaxed);
        self.sched_bytes_freed_early.store(0, Ordering::Relaxed);
        self.sched_peak_bytes.store(0, Ordering::Relaxed);
        self.sched_resident_all_bytes.store(0, Ordering::Relaxed);
        self.pool_hits.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
    }
}

/// The executor: owns the optimizer (for codegen modes) and a per-DAG
/// fusion-plan cache standing in for SystemML's runtime-program cache
/// across dynamic recompilations.
pub struct Executor {
    pub mode: FusionMode,
    pub optimizer: Optimizer,
    pub stats: ExecStats,
    /// Cache of fusion plans per structural DAG hash (set `false` to force
    /// re-optimization on every call, as in the compilation-overhead
    /// experiments).
    pub cache_plans: bool,
    plans: Mutex<FxHashMap<u64, Arc<FusionPlan>>>,
}

impl Executor {
    pub fn new(mode: FusionMode) -> Self {
        Executor {
            mode,
            optimizer: Optimizer::new(mode),
            stats: ExecStats::default(),
            cache_plans: true,
            plans: Mutex::new(FxHashMap::default()),
        }
    }

    /// Executes a DAG through the scheduled engine, returning root values in
    /// root order (moved out of their slots, never cloned).
    pub fn execute(&self, dag: &HopDag, bindings: &Bindings) -> Vec<Value> {
        let out = match self.mode {
            FusionMode::Base => schedule::execute(dag, None, None, bindings, &self.stats),
            FusionMode::Fused => {
                let patterns = handcoded::match_patterns(dag);
                schedule::execute(dag, None, Some(&patterns), bindings, &self.stats)
            }
            _ => {
                let plan = self.plan_for(dag);
                schedule::execute(dag, Some(&plan), None, bindings, &self.stats)
            }
        };
        // Epoch-bound the shared pool: buffers unused for a few DAGs retire.
        pool::global().advance_epoch();
        out
    }

    /// Executes a DAG sequentially with the retained seed-era paths (the
    /// reference interpreter for `Base`, the demand-driven hand-coded
    /// interpreter for `Fused`, the recursive materializer for Gen modes).
    /// This is the oracle the scheduled engine is differentially tested
    /// against; results must be bitwise-equal.
    pub fn execute_sequential(&self, dag: &HopDag, bindings: &Bindings) -> Vec<Value> {
        match self.mode {
            FusionMode::Base => interp::interpret(dag, bindings),
            FusionMode::Fused => handcoded::interpret(dag, bindings, &self.stats),
            _ => {
                let plan = self.plan_for(dag);
                self.execute_with_plan_sequential(dag, &plan, bindings)
            }
        }
    }

    /// Returns (possibly cached) fusion plan for a DAG.
    pub fn plan_for(&self, dag: &HopDag) -> Arc<FusionPlan> {
        if !self.cache_plans {
            return Arc::new(self.optimizer.optimize(dag));
        }
        let key = dag_structural_hash(dag);
        if let Some(p) = self.plans.lock().get(&key) {
            return Arc::clone(p);
        }
        let p = Arc::new(self.optimizer.optimize(dag));
        self.plans.lock().insert(key, Arc::clone(&p));
        p
    }

    /// Executes a DAG under an explicit fusion plan through the scheduled
    /// engine.
    pub fn execute_with_plan(
        &self,
        dag: &HopDag,
        plan: &FusionPlan,
        bindings: &Bindings,
    ) -> Vec<Value> {
        schedule::execute(dag, Some(plan), None, bindings, &self.stats)
    }

    /// The seed's recursive lazy materializer, retained as the sequential
    /// oracle for differential tests: every intermediate stays alive for the
    /// whole DAG and operators run one at a time.
    pub fn execute_with_plan_sequential(
        &self,
        dag: &HopDag,
        plan: &FusionPlan,
        bindings: &Bindings,
    ) -> Vec<Value> {
        // Map root hop → (operator, output slot).
        let mut op_roots: FxHashMap<HopId, (usize, usize)> = FxHashMap::default();
        for (i, f) in plan.operators.iter().enumerate() {
            for (slot, &r) in f.roots.iter().enumerate() {
                op_roots.insert(r, (i, slot));
            }
        }
        let mut vals: Vec<Option<Value>> = vec![None; dag.len()];
        for &root in dag.roots() {
            self.materialize(dag, plan, &op_roots, bindings, &mut vals, root);
        }
        dag.roots().iter().map(|r| vals[r.index()].take().expect("root computed")).collect()
    }

    /// Lazily computes the value of `hop`, preferring its fused operator.
    fn materialize(
        &self,
        dag: &HopDag,
        plan: &FusionPlan,
        op_roots: &FxHashMap<HopId, (usize, usize)>,
        bindings: &Bindings,
        vals: &mut Vec<Option<Value>>,
        hop: HopId,
    ) {
        if vals[hop.index()].is_some() {
            return;
        }
        if let Some(&(op_ix, _)) = op_roots.get(&hop) {
            let f = &plan.operators[op_ix];
            // Gather operator inputs.
            for &m in f.cplan.main.iter() {
                self.materialize(dag, plan, op_roots, bindings, vals, m);
            }
            for &s in &f.cplan.sides {
                self.materialize(dag, plan, op_roots, bindings, vals, s);
            }
            for &s in &f.cplan.scalars {
                self.materialize(dag, plan, op_roots, bindings, vals, s);
            }
            let outs = self.run_operator(f, vals);
            self.stats.fused_ops.fetch_add(1, Ordering::Relaxed);
            for (slot, &r) in f.roots.iter().enumerate() {
                let m = &outs[slot];
                let v = if dag.hop(r).is_scalar() && m.is_scalar_shaped() {
                    Value::Scalar(m.get(0, 0))
                } else {
                    Value::Matrix(m.clone())
                };
                vals[r.index()] = Some(v);
            }
            return;
        }
        // Basic operator: compute inputs then evaluate.
        let inputs = dag.hop(hop).inputs.clone();
        for &i in &inputs {
            self.materialize(dag, plan, op_roots, bindings, vals, i);
        }
        if !dag.hop(hop).kind.is_leaf() {
            self.stats.basic_ops.fetch_add(1, Ordering::Relaxed);
        }
        let v = interp::eval_op(dag, hop, vals, bindings);
        vals[hop.index()] = Some(v);
    }

    /// Runs one fused operator with bound inputs.
    fn run_operator(
        &self,
        f: &FusedOperator,
        vals: &[Option<Value>],
    ) -> Vec<fusedml_linalg::Matrix> {
        let get_matrix = |h: HopId| -> fusedml_linalg::Matrix {
            vals[h.index()].as_ref().expect("operator input computed").as_matrix()
        };
        let main_val = f.cplan.main.map(get_matrix);
        let sides: Vec<SideInput> =
            f.cplan.sides.iter().map(|&h| SideInput::bind(&get_matrix(h))).collect();
        let scalars: Vec<f64> = f
            .cplan
            .scalars
            .iter()
            .map(|&h| vals[h.index()].as_ref().expect("scalar computed").as_scalar())
            .collect();
        spoof::execute(
            &f.op.spec,
            main_val.as_ref(),
            &sides,
            &scalars,
            f.cplan.iter_rows,
            f.cplan.iter_cols,
        )
    }
}

/// A structural hash of a DAG (operator kinds, edges, sizes) for the
/// fusion-plan cache.
pub fn dag_structural_hash(dag: &HopDag) -> u64 {
    let mut s = String::with_capacity(dag.len() * 16);
    for h in dag.iter() {
        s.push_str(&format!("{:?}|{:?}|{}x{};", h.kind, h.inputs, h.size.rows, h.size.cols));
    }
    s.push_str(&format!("{:?}", dag.roots()));
    fusedml_core::util::fx_hash(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_linalg::{generate, Matrix};

    fn bind(pairs: &[(&str, Matrix)]) -> Bindings {
        pairs.iter().map(|(n, m)| (n.to_string(), m.clone())).collect()
    }

    /// Gen and Base must agree on the paper's Expression (2) (MLogreg core).
    #[test]
    fn mlogreg_core_gen_equals_base() {
        let (n, m, k) = (300, 40, 4);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let v = b.read("V", m, k, 1.0);
        let p = b.read("P", n, k + 1, 1.0);
        let xv = b.mm(x, v);
        let pk = b.rix(p, None, Some((0, k)));
        let q = b.mult(pk, xv);
        let rs = b.row_sums(q);
        let prs = b.mult(pk, rs);
        let diff = b.sub(q, prs);
        let xt = b.t(x);
        let h = b.mm(xt, diff);
        let dag = b.build(vec![h]);
        let bindings = bind(&[
            ("X", generate::rand_dense(n, m, -1.0, 1.0, 1)),
            ("V", generate::rand_dense(m, k, -1.0, 1.0, 2)),
            ("P", generate::rand_dense(n, k + 1, 0.0, 1.0, 3)),
        ]);
        let base = Executor::new(FusionMode::Base).execute(&dag, &bindings);
        let gen = Executor::new(FusionMode::Gen);
        let out = gen.execute(&dag, &bindings);
        assert!(out[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
        let (fused, _, _) = gen.stats.snapshot();
        assert!(fused >= 1, "the Row operator must actually run");
    }

    /// Expression (1): the ALS-CG update rule with sparse X.
    #[test]
    fn als_update_gen_equals_base() {
        let (n, m, r) = (400, 300, 10);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 0.01);
        let u = b.read("U", n, r, 1.0);
        let v = b.read("V", m, r, 1.0);
        let rr = b.read("R", n, r, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let zero = b.lit(0.0);
        let mask = b.neq(x, zero);
        let w = b.mult(mask, uvt);
        let wv = b.mm(w, v);
        let lam = b.lit(1e-6);
        let ulam = b.mult(u, lam);
        let ur = b.mult(ulam, rr);
        let o = b.add(wv, ur);
        let dag = b.build(vec![o]);
        let bindings = bind(&[
            ("X", generate::rand_matrix(n, m, 1.0, 5.0, 0.01, 4)),
            ("U", generate::rand_dense(n, r, 0.1, 1.0, 5)),
            ("V", generate::rand_dense(m, r, 0.1, 1.0, 6)),
            ("R", generate::rand_dense(n, r, 0.1, 1.0, 7)),
        ]);
        let base = Executor::new(FusionMode::Base).execute(&dag, &bindings);
        let gen = Executor::new(FusionMode::Gen);
        let out = gen.execute(&dag, &bindings);
        assert!(out[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
        let (fused, _, _) = gen.stats.snapshot();
        assert!(fused >= 1, "fused operators must run: {:?}", gen.plan_for(&dag).explain());
    }

    #[test]
    fn multi_aggregate_gen_equals_base() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 200, 100, 1.0);
        let y = b.read("Y", 200, 100, 1.0);
        let z = b.read("Z", 200, 100, 1.0);
        let a = b.mult(x, y);
        let c = b.mult(x, z);
        let s1 = b.sum(a);
        let s2 = b.sum(c);
        let dag = b.build(vec![s1, s2]);
        let bindings = bind(&[
            ("X", generate::rand_dense(200, 100, -1.0, 1.0, 8)),
            ("Y", generate::rand_dense(200, 100, -1.0, 1.0, 9)),
            ("Z", generate::rand_dense(200, 100, -1.0, 1.0, 10)),
        ]);
        let base = Executor::new(FusionMode::Base).execute(&dag, &bindings);
        let gen = Executor::new(FusionMode::Gen);
        let out = gen.execute(&dag, &bindings);
        for (o, e) in out.iter().zip(&base) {
            assert!(fusedml_linalg::approx_eq(o.as_scalar(), e.as_scalar(), 1e-9));
        }
    }

    #[test]
    fn all_modes_agree_on_cell_chain() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 150, 150, 1.0);
        let y = b.read("Y", 150, 150, 1.0);
        let z = b.read("Z", 150, 150, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(150, 150, -1.0, 1.0, 11)),
            ("Y", generate::rand_dense(150, 150, -1.0, 1.0, 12)),
            ("Z", generate::rand_dense(150, 150, -1.0, 1.0, 13)),
        ]);
        let reference = Executor::new(FusionMode::Base).execute(&dag, &bindings)[0].as_scalar();
        for mode in [FusionMode::Fused, FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR] {
            let out = Executor::new(mode).execute(&dag, &bindings)[0].as_scalar();
            assert!(
                fusedml_linalg::approx_eq(out, reference, 1e-9),
                "{mode:?}: {out} vs {reference}"
            );
        }
    }

    #[test]
    fn plan_cache_avoids_reoptimization() {
        let build = || {
            let mut b = fusedml_hop::DagBuilder::new();
            let x = b.read("X", 100, 100, 1.0);
            let y = b.read("Y", 100, 100, 1.0);
            let m = b.mult(x, y);
            let s = b.sum(m);
            b.build(vec![s])
        };
        let exec = Executor::new(FusionMode::Gen);
        let bindings = bind(&[
            ("X", generate::rand_dense(100, 100, 0.0, 1.0, 14)),
            ("Y", generate::rand_dense(100, 100, 0.0, 1.0, 15)),
        ]);
        let _ = exec.execute(&build(), &bindings);
        let _ = exec.execute(&build(), &bindings);
        let snap = exec.optimizer.stats.snapshot();
        assert_eq!(snap.dags_optimized, 1, "second execution hits the plan cache");
    }

    /// Materialized intermediates shared between a fused operator and an
    /// external consumer are computed correctly (redundant or materialized).
    #[test]
    fn shared_intermediate_correctness() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 120, 80, 1.0);
        let y = b.read("Y", 120, 80, 1.0);
        let shared = b.mult(x, y);
        let e = b.exp(shared);
        let s1 = b.sum(e);
        let s2 = b.sum(shared);
        let dag = b.build(vec![s1, s2]);
        let bindings = bind(&[
            ("X", generate::rand_dense(120, 80, -0.5, 0.5, 16)),
            ("Y", generate::rand_dense(120, 80, -0.5, 0.5, 17)),
        ]);
        let base = Executor::new(FusionMode::Base).execute(&dag, &bindings);
        for mode in [FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR] {
            let out = Executor::new(mode).execute(&dag, &bindings);
            for (o, e) in out.iter().zip(&base) {
                assert!(fusedml_linalg::approx_eq(o.as_scalar(), e.as_scalar(), 1e-9), "{mode:?}");
            }
        }
    }
}
