//! Execution statistics and the sequential oracle.
//!
//! The executor API lives on [`crate::engine::Engine`] and
//! [`crate::engine::CompiledScript`] (compile once, execute concurrently).
//! This module keeps the shared [`ExecStats`] counters, the per-call
//! [`SchedSnapshot`] delta, and the seed's recursive materializer
//! (`plan_sequential`) that the scheduled engine is differentially tested
//! against.

use crate::side::SideInput;
use crate::spoof;
pub use fusedml_core::optimizer::dag_structural_hash;
use fusedml_core::optimizer::{FusedOperator, FusionPlan};
use fusedml_core::util::FxHashMap;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::{HopDag, HopId};
use fusedml_linalg::matrix::Value;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Execution statistics, including scheduler events (operators executed
/// while another was in flight, buffer-pool hits/misses, bytes freed before
/// the DAG finished, and the tracked peak footprint of the last execution).
///
/// All counters are interior-mutable atomics behind a shared handle: one
/// instance is owned by an [`crate::engine::Engine`] (as `Arc<ExecStats>`)
/// and shared with
/// every [`crate::engine::CompiledScript`] it compiles, so concurrent
/// executions accumulate into the same counters without any `&mut` access.
/// Read through [`ExecStats::snapshot`] / [`ExecStats::scheduler_snapshot`];
/// per-call deltas come back on `Outputs::sched`.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Generated fused operators executed.
    pub(crate) fused_ops: AtomicUsize,
    /// Fused operators whose inner loops ran as a specialized static kernel
    /// (closure-specialized fast kernel or monomorphized shape kernel).
    pub(crate) mono_ops: AtomicUsize,
    /// Fused operators that fell back to the generic tile/band interpreter.
    pub(crate) interp_fused_ops: AtomicUsize,
    /// Hand-coded fused operators executed.
    pub(crate) handcoded_ops: AtomicUsize,
    /// Basic operators executed.
    pub(crate) basic_ops: AtomicUsize,
    /// Operators that started while at least one other was still running.
    pub(crate) sched_parallel_ops: AtomicUsize,
    /// Bytes of intermediates freed before the end of their DAG.
    pub(crate) sched_bytes_freed_early: AtomicUsize,
    /// High-water tracked peak resident bytes over all executions since the
    /// last reset (per-execution peaks come back on `Outputs::sched`; a
    /// last-writer store here would be clobbered under concurrent runs).
    pub(crate) sched_peak_bytes: AtomicUsize,
    /// High-water hold-everything resident bytes (inputs + every
    /// materialized value, nothing freed) — what the seed runtime kept.
    pub(crate) sched_resident_all_bytes: AtomicUsize,
    /// Buffer-pool hits attributed to this engine's runs.
    pub(crate) pool_hits: AtomicUsize,
    /// Buffer-pool misses attributed to this engine's runs.
    pub(crate) pool_misses: AtomicUsize,
    /// Compiled-script recompiles triggered by the shape-revalidation guard
    /// (bound input geometry diverged from the costed plan).
    pub(crate) plan_recompiles: AtomicUsize,
    /// Serialized bytes written to the spill tier.
    pub(crate) sched_spilled_bytes: AtomicUsize,
    /// Serialized bytes read back from the spill tier.
    pub(crate) sched_reloaded_bytes: AtomicUsize,
    /// Synchronous reloads: a consumer found its input spilled at gather.
    pub(crate) sched_spill_faults: AtomicUsize,
    /// Asynchronous reloads completed by prefetch jobs ahead of the consumer.
    pub(crate) sched_prefetch_hits: AtomicUsize,
    /// Microseconds workers spent blocked on in-flight spill I/O.
    pub(crate) sched_spill_stall_us: AtomicUsize,
    /// High-water bytes of leaf bindings streamed (uncharged) in one run.
    pub(crate) sched_streamed_leaf_bytes: AtomicUsize,
    /// Executions that ended in a typed [`crate::error::ExecError`] (the
    /// engine swept and stayed reusable after each).
    pub(crate) failed_executions: AtomicUsize,
    /// Spill I/O attempts that failed and were retried.
    pub(crate) sched_spill_retries: AtomicUsize,
    /// Faults injected by the engine's `FaultPlan` across all runs.
    pub(crate) sched_injected_faults: AtomicUsize,
    /// Runs that degraded to resident-only execution after exhausting spill
    /// write retries.
    pub(crate) sched_degraded_runs: AtomicUsize,
    /// Fused operators the planner executed across the shard pool.
    pub(crate) sched_sharded_ops: AtomicUsize,
    /// High-water shard count used by any single sharded operator.
    pub(crate) sched_shards_used: AtomicUsize,
    /// Bytes of side inputs broadcast to shards (counted per receiver).
    pub(crate) sched_shard_broadcast_bytes: AtomicUsize,
    /// Bytes of per-shard partial outputs merged on the driver.
    pub(crate) sched_shard_partial_bytes: AtomicUsize,
    /// Microseconds the driver spent merging shard partials.
    pub(crate) sched_shard_merge_us: AtomicUsize,
    /// High-water shard skew (slowest/mean shard time, ×1000) of any
    /// sharded operator.
    pub(crate) sched_shard_skew_milli: AtomicUsize,
}

/// Plain-data snapshot of the scheduler counters in [`ExecStats`] — also the
/// per-`execute` delta returned on `Outputs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    pub parallel_ops: usize,
    pub bytes_freed_early: usize,
    pub peak_bytes: usize,
    pub resident_all_bytes: usize,
    pub pool_hits: usize,
    pub pool_misses: usize,
    /// Serialized bytes evicted to the spill tier.
    pub spilled_bytes: usize,
    /// Serialized bytes reloaded from the spill tier.
    pub reloaded_bytes: usize,
    /// Synchronous reloads (consumer found its input on disk at gather).
    pub spill_faults: usize,
    /// Reloads completed by async prefetch jobs before the consumer asked.
    pub prefetch_hits: usize,
    /// Microseconds workers spent blocked on in-flight spill I/O.
    pub spill_stall_us: usize,
    /// Bytes of leaf bindings streamed band-by-band instead of being charged
    /// against the resident budget (each larger than the whole budget).
    pub streamed_leaf_bytes: usize,
    /// Spill I/O attempts that failed and were retried (whether or not a
    /// later attempt succeeded).
    pub spill_retries: usize,
    /// Faults the engine's `FaultPlan` injected into this run.
    pub injected_faults: usize,
    /// 1 if this run degraded to resident-only execution after exhausting
    /// spill write retries, else 0.
    pub degraded: usize,
    /// Fused operators executed across the shard pool.
    pub sharded_ops: usize,
    /// High-water shard count used by any single sharded operator.
    pub shards_used: usize,
    /// Bytes of side inputs broadcast to shards (counted per receiver).
    pub shard_broadcast_bytes: usize,
    /// Bytes of per-shard partial outputs merged on the driver.
    pub shard_partial_bytes: usize,
    /// Microseconds the driver spent merging shard partials.
    pub shard_merge_us: usize,
    /// High-water shard skew of any sharded operator: slowest shard time
    /// over mean shard time, ×1000 (1000 = perfectly balanced).
    pub shard_skew_milli: usize,
}

impl SchedSnapshot {
    /// Fraction of pooled allocations served from the pool.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Hold-everything bytes over tracked peak (≥ 1: how much smaller the
    /// liveness-aware footprint is than the seed behaviour).
    pub fn footprint_reduction(&self) -> f64 {
        if self.peak_bytes == 0 {
            1.0
        } else {
            self.resident_all_bytes as f64 / self.peak_bytes as f64
        }
    }

    /// Fraction of spill reloads that the async prefetcher finished before
    /// the consumer asked (the rest were synchronous faults).
    pub fn prefetch_hit_rate(&self) -> f64 {
        let total = self.prefetch_hits + self.spill_faults;
        if total == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / total as f64
        }
    }
}

impl ExecStats {
    /// `(fused, handcoded, basic)` operator counts.
    pub fn snapshot(&self) -> (usize, usize, usize) {
        (
            self.fused_ops.load(Ordering::Relaxed),
            self.handcoded_ops.load(Ordering::Relaxed),
            self.basic_ops.load(Ordering::Relaxed),
        )
    }

    /// `(mono, interpreted)` fused-operator counts: how many fused operators
    /// executed under a specialized static kernel versus the generic tile
    /// interpreter. `mono + interpreted == fused` from [`Self::snapshot`].
    pub fn mono_snapshot(&self) -> (usize, usize) {
        (self.mono_ops.load(Ordering::Relaxed), self.interp_fused_ops.load(Ordering::Relaxed))
    }

    /// Fraction of fused operators that executed under a specialized static
    /// kernel (0.0 when no fused operator has run).
    pub fn mono_hit_rate(&self) -> f64 {
        let (mono, interp) = self.mono_snapshot();
        let total = mono + interp;
        if total == 0 {
            0.0
        } else {
            mono as f64 / total as f64
        }
    }

    /// Records one fused-operator execution under the given shape class.
    pub(crate) fn record_fused_class(&self, class: fusedml_core::spoof::mono::ShapeClass) {
        if class.is_specialized() {
            self.mono_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.interp_fused_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Scheduler-event counters (see [`SchedSnapshot`]).
    pub fn scheduler_snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            parallel_ops: self.sched_parallel_ops.load(Ordering::Relaxed),
            bytes_freed_early: self.sched_bytes_freed_early.load(Ordering::Relaxed),
            peak_bytes: self.sched_peak_bytes.load(Ordering::Relaxed),
            resident_all_bytes: self.sched_resident_all_bytes.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            spilled_bytes: self.sched_spilled_bytes.load(Ordering::Relaxed),
            reloaded_bytes: self.sched_reloaded_bytes.load(Ordering::Relaxed),
            spill_faults: self.sched_spill_faults.load(Ordering::Relaxed),
            prefetch_hits: self.sched_prefetch_hits.load(Ordering::Relaxed),
            spill_stall_us: self.sched_spill_stall_us.load(Ordering::Relaxed),
            streamed_leaf_bytes: self.sched_streamed_leaf_bytes.load(Ordering::Relaxed),
            spill_retries: self.sched_spill_retries.load(Ordering::Relaxed),
            injected_faults: self.sched_injected_faults.load(Ordering::Relaxed),
            degraded: self.sched_degraded_runs.load(Ordering::Relaxed),
            sharded_ops: self.sched_sharded_ops.load(Ordering::Relaxed),
            shards_used: self.sched_shards_used.load(Ordering::Relaxed),
            shard_broadcast_bytes: self.sched_shard_broadcast_bytes.load(Ordering::Relaxed),
            shard_partial_bytes: self.sched_shard_partial_bytes.load(Ordering::Relaxed),
            shard_merge_us: self.sched_shard_merge_us.load(Ordering::Relaxed),
            shard_skew_milli: self.sched_shard_skew_milli.load(Ordering::Relaxed),
        }
    }

    /// Executions that returned a typed error (after which the engine swept
    /// itself and stayed reusable).
    pub fn failed_executions(&self) -> usize {
        self.failed_executions.load(Ordering::Relaxed)
    }

    /// Recompiles triggered by the shape-revalidation guard.
    pub fn plan_recompiles(&self) -> usize {
        self.plan_recompiles.load(Ordering::Relaxed)
    }

    /// Accumulates one execution's scheduler delta into the shared counters.
    /// Event counts sum; the footprint figures keep the high-water mark, so
    /// a small run finishing after a large one cannot clobber the engine's
    /// reported peak (per-run figures live on `Outputs::sched`).
    pub(crate) fn record_sched(&self, s: &SchedSnapshot) {
        self.sched_parallel_ops.fetch_add(s.parallel_ops, Ordering::Relaxed);
        self.sched_bytes_freed_early.fetch_add(s.bytes_freed_early, Ordering::Relaxed);
        self.sched_peak_bytes.fetch_max(s.peak_bytes, Ordering::Relaxed);
        self.sched_resident_all_bytes.fetch_max(s.resident_all_bytes, Ordering::Relaxed);
        self.pool_hits.fetch_add(s.pool_hits, Ordering::Relaxed);
        self.pool_misses.fetch_add(s.pool_misses, Ordering::Relaxed);
        self.sched_spilled_bytes.fetch_add(s.spilled_bytes, Ordering::Relaxed);
        self.sched_reloaded_bytes.fetch_add(s.reloaded_bytes, Ordering::Relaxed);
        self.sched_spill_faults.fetch_add(s.spill_faults, Ordering::Relaxed);
        self.sched_prefetch_hits.fetch_add(s.prefetch_hits, Ordering::Relaxed);
        self.sched_spill_stall_us.fetch_add(s.spill_stall_us, Ordering::Relaxed);
        self.sched_streamed_leaf_bytes.fetch_max(s.streamed_leaf_bytes, Ordering::Relaxed);
        self.sched_spill_retries.fetch_add(s.spill_retries, Ordering::Relaxed);
        self.sched_injected_faults.fetch_add(s.injected_faults, Ordering::Relaxed);
        self.sched_degraded_runs.fetch_add(s.degraded, Ordering::Relaxed);
        self.sched_sharded_ops.fetch_add(s.sharded_ops, Ordering::Relaxed);
        self.sched_shards_used.fetch_max(s.shards_used, Ordering::Relaxed);
        self.sched_shard_broadcast_bytes.fetch_add(s.shard_broadcast_bytes, Ordering::Relaxed);
        self.sched_shard_partial_bytes.fetch_add(s.shard_partial_bytes, Ordering::Relaxed);
        self.sched_shard_merge_us.fetch_add(s.shard_merge_us, Ordering::Relaxed);
        self.sched_shard_skew_milli.fetch_max(s.shard_skew_milli, Ordering::Relaxed);
    }

    pub fn reset(&self) {
        self.fused_ops.store(0, Ordering::Relaxed);
        self.mono_ops.store(0, Ordering::Relaxed);
        self.interp_fused_ops.store(0, Ordering::Relaxed);
        self.handcoded_ops.store(0, Ordering::Relaxed);
        self.basic_ops.store(0, Ordering::Relaxed);
        self.sched_parallel_ops.store(0, Ordering::Relaxed);
        self.sched_bytes_freed_early.store(0, Ordering::Relaxed);
        self.sched_peak_bytes.store(0, Ordering::Relaxed);
        self.sched_resident_all_bytes.store(0, Ordering::Relaxed);
        self.pool_hits.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.plan_recompiles.store(0, Ordering::Relaxed);
        self.sched_spilled_bytes.store(0, Ordering::Relaxed);
        self.sched_reloaded_bytes.store(0, Ordering::Relaxed);
        self.sched_spill_faults.store(0, Ordering::Relaxed);
        self.sched_prefetch_hits.store(0, Ordering::Relaxed);
        self.sched_spill_stall_us.store(0, Ordering::Relaxed);
        self.sched_streamed_leaf_bytes.store(0, Ordering::Relaxed);
        self.failed_executions.store(0, Ordering::Relaxed);
        self.sched_spill_retries.store(0, Ordering::Relaxed);
        self.sched_injected_faults.store(0, Ordering::Relaxed);
        self.sched_degraded_runs.store(0, Ordering::Relaxed);
        self.sched_sharded_ops.store(0, Ordering::Relaxed);
        self.sched_shards_used.store(0, Ordering::Relaxed);
        self.sched_shard_broadcast_bytes.store(0, Ordering::Relaxed);
        self.sched_shard_partial_bytes.store(0, Ordering::Relaxed);
        self.sched_shard_merge_us.store(0, Ordering::Relaxed);
        self.sched_shard_skew_milli.store(0, Ordering::Relaxed);
    }
}

/// The seed's recursive lazy materializer: every intermediate stays alive
/// for the whole DAG and operators run one at a time. Backs the engine's
/// `execute_sequential` oracle.
pub(crate) fn plan_sequential(
    dag: &HopDag,
    plan: &FusionPlan,
    bindings: &Bindings,
    stats: &ExecStats,
) -> Vec<Value> {
    // Map root hop → (operator, output slot).
    let mut op_roots: FxHashMap<HopId, (usize, usize)> = FxHashMap::default();
    for (i, f) in plan.operators.iter().enumerate() {
        for (slot, &r) in f.roots.iter().enumerate() {
            op_roots.insert(r, (i, slot));
        }
    }
    let mut vals: Vec<Option<Value>> = vec![None; dag.len()];
    for &root in dag.roots() {
        materialize(dag, plan, &op_roots, bindings, stats, &mut vals, root);
    }
    dag.roots().iter().map(|r| vals[r.index()].take().expect("root computed")).collect()
}

/// Lazily computes the value of `hop`, preferring its fused operator.
fn materialize(
    dag: &HopDag,
    plan: &FusionPlan,
    op_roots: &FxHashMap<HopId, (usize, usize)>,
    bindings: &Bindings,
    stats: &ExecStats,
    vals: &mut Vec<Option<Value>>,
    hop: HopId,
) {
    if vals[hop.index()].is_some() {
        return;
    }
    if let Some(&(op_ix, _)) = op_roots.get(&hop) {
        let f = &plan.operators[op_ix];
        // Gather operator inputs.
        for &m in f.cplan.main.iter() {
            materialize(dag, plan, op_roots, bindings, stats, vals, m);
        }
        for &s in &f.cplan.sides {
            materialize(dag, plan, op_roots, bindings, stats, vals, s);
        }
        for &s in &f.cplan.scalars {
            materialize(dag, plan, op_roots, bindings, stats, vals, s);
        }
        let outs = run_operator(f, vals, stats);
        stats.fused_ops.fetch_add(1, Ordering::Relaxed);
        for (slot, &r) in f.roots.iter().enumerate() {
            let m = &outs[slot];
            let v = if dag.hop(r).is_scalar() && m.is_scalar_shaped() {
                Value::Scalar(m.get(0, 0))
            } else {
                Value::Matrix(m.clone())
            };
            vals[r.index()] = Some(v);
        }
        return;
    }
    // Basic operator: compute inputs then evaluate.
    let inputs = dag.hop(hop).inputs.clone();
    for &i in &inputs {
        materialize(dag, plan, op_roots, bindings, stats, vals, i);
    }
    if !dag.hop(hop).kind.is_leaf() {
        stats.basic_ops.fetch_add(1, Ordering::Relaxed);
    }
    let v = interp::eval_op(dag, hop, vals, bindings);
    vals[hop.index()] = Some(v);
}

/// Runs one fused operator with bound inputs.
fn run_operator(
    f: &FusedOperator,
    vals: &[Option<Value>],
    stats: &ExecStats,
) -> Vec<fusedml_linalg::Matrix> {
    let get_matrix = |h: HopId| -> fusedml_linalg::Matrix {
        vals[h.index()].as_ref().expect("operator input computed").as_matrix()
    };
    let main_val = f.cplan.main.map(get_matrix);
    let sides: Vec<SideInput> =
        f.cplan.sides.iter().map(|&h| SideInput::bind(&get_matrix(h))).collect();
    let scalars: Vec<f64> = f
        .cplan
        .scalars
        .iter()
        .map(|&h| vals[h.index()].as_ref().expect("scalar computed").as_scalar())
        .collect();
    let side_dims: Vec<(usize, usize)> = sides.iter().map(|s| (s.rows(), s.cols())).collect();
    stats.record_fused_class(spoof::kernel_class(&f.op.spec, &side_dims));
    spoof::execute(
        &f.op.spec,
        main_val.as_ref(),
        &sides,
        &scalars,
        f.cplan.iter_rows,
        f.cplan.iter_cols,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use fusedml_core::FusionMode;
    use fusedml_hop::interp::bind;
    use fusedml_linalg::generate;

    fn run(mode: FusionMode, dag: &HopDag, bindings: &Bindings) -> Vec<Value> {
        Engine::new(mode).execute(dag, bindings).into_values()
    }

    /// Gen and Base must agree on the paper's Expression (2) (MLogreg core).
    #[test]
    fn mlogreg_core_gen_equals_base() {
        let (n, m, k) = (300, 40, 4);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let v = b.read("V", m, k, 1.0);
        let p = b.read("P", n, k + 1, 1.0);
        let xv = b.mm(x, v);
        let pk = b.rix(p, None, Some((0, k)));
        let q = b.mult(pk, xv);
        let rs = b.row_sums(q);
        let prs = b.mult(pk, rs);
        let diff = b.sub(q, prs);
        let xt = b.t(x);
        let h = b.mm(xt, diff);
        let dag = b.build(vec![h]);
        let bindings = bind(&[
            ("X", generate::rand_dense(n, m, -1.0, 1.0, 1)),
            ("V", generate::rand_dense(m, k, -1.0, 1.0, 2)),
            ("P", generate::rand_dense(n, k + 1, 0.0, 1.0, 3)),
        ]);
        let base = run(FusionMode::Base, &dag, &bindings);
        let gen = Engine::new(FusionMode::Gen);
        let out = gen.execute(&dag, &bindings).into_values();
        assert!(out[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
        let (fused, _, _) = gen.stats().snapshot();
        assert!(fused >= 1, "the Row operator must actually run");
    }

    /// Expression (1): the ALS-CG update rule with sparse X.
    #[test]
    fn als_update_gen_equals_base() {
        let (n, m, r) = (400, 300, 10);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 0.01);
        let u = b.read("U", n, r, 1.0);
        let v = b.read("V", m, r, 1.0);
        let rr = b.read("R", n, r, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let zero = b.lit(0.0);
        let mask = b.neq(x, zero);
        let w = b.mult(mask, uvt);
        let wv = b.mm(w, v);
        let lam = b.lit(1e-6);
        let ulam = b.mult(u, lam);
        let ur = b.mult(ulam, rr);
        let o = b.add(wv, ur);
        let dag = b.build(vec![o]);
        let bindings = bind(&[
            ("X", generate::rand_matrix(n, m, 1.0, 5.0, 0.01, 4)),
            ("U", generate::rand_dense(n, r, 0.1, 1.0, 5)),
            ("V", generate::rand_dense(m, r, 0.1, 1.0, 6)),
            ("R", generate::rand_dense(n, r, 0.1, 1.0, 7)),
        ]);
        let base = run(FusionMode::Base, &dag, &bindings);
        let gen = Engine::new(FusionMode::Gen);
        let out = gen.execute(&dag, &bindings).into_values();
        assert!(out[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
        let (fused, _, _) = gen.stats().snapshot();
        assert!(fused >= 1, "fused operators must run: {:?}", gen.plan_for(&dag).explain());
    }

    #[test]
    fn multi_aggregate_gen_equals_base() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 200, 100, 1.0);
        let y = b.read("Y", 200, 100, 1.0);
        let z = b.read("Z", 200, 100, 1.0);
        let a = b.mult(x, y);
        let c = b.mult(x, z);
        let s1 = b.sum(a);
        let s2 = b.sum(c);
        let dag = b.build(vec![s1, s2]);
        let bindings = bind(&[
            ("X", generate::rand_dense(200, 100, -1.0, 1.0, 8)),
            ("Y", generate::rand_dense(200, 100, -1.0, 1.0, 9)),
            ("Z", generate::rand_dense(200, 100, -1.0, 1.0, 10)),
        ]);
        let base = run(FusionMode::Base, &dag, &bindings);
        let gen = Engine::new(FusionMode::Gen);
        let out = gen.execute(&dag, &bindings).into_values();
        for (o, e) in out.iter().zip(&base) {
            assert!(fusedml_linalg::approx_eq(o.as_scalar(), e.as_scalar(), 1e-9));
        }
    }

    #[test]
    fn all_modes_agree_on_cell_chain() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 150, 150, 1.0);
        let y = b.read("Y", 150, 150, 1.0);
        let z = b.read("Z", 150, 150, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(150, 150, -1.0, 1.0, 11)),
            ("Y", generate::rand_dense(150, 150, -1.0, 1.0, 12)),
            ("Z", generate::rand_dense(150, 150, -1.0, 1.0, 13)),
        ]);
        let reference = run(FusionMode::Base, &dag, &bindings)[0].as_scalar();
        for mode in [FusionMode::Fused, FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR] {
            let out = run(mode, &dag, &bindings)[0].as_scalar();
            assert!(
                fusedml_linalg::approx_eq(out, reference, 1e-9),
                "{mode:?}: {out} vs {reference}"
            );
        }
    }

    #[test]
    fn plan_cache_avoids_reoptimization() {
        let build = || {
            let mut b = fusedml_hop::DagBuilder::new();
            let x = b.read("X", 100, 100, 1.0);
            let y = b.read("Y", 100, 100, 1.0);
            let m = b.mult(x, y);
            let s = b.sum(m);
            b.build(vec![s])
        };
        let exec = Engine::new(FusionMode::Gen);
        let bindings = bind(&[
            ("X", generate::rand_dense(100, 100, 0.0, 1.0, 14)),
            ("Y", generate::rand_dense(100, 100, 0.0, 1.0, 15)),
        ]);
        let _ = exec.execute(&build(), &bindings);
        let _ = exec.execute(&build(), &bindings);
        let snap = exec.optimizer().stats.snapshot();
        assert_eq!(snap.dags_optimized, 1, "second execution hits the plan cache");
    }

    /// Materialized intermediates shared between a fused operator and an
    /// external consumer are computed correctly (redundant or materialized).
    #[test]
    fn shared_intermediate_correctness() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 120, 80, 1.0);
        let y = b.read("Y", 120, 80, 1.0);
        let shared = b.mult(x, y);
        let e = b.exp(shared);
        let s1 = b.sum(e);
        let s2 = b.sum(shared);
        let dag = b.build(vec![s1, s2]);
        let bindings = bind(&[
            ("X", generate::rand_dense(120, 80, -0.5, 0.5, 16)),
            ("Y", generate::rand_dense(120, 80, -0.5, 0.5, 17)),
        ]);
        let base = run(FusionMode::Base, &dag, &bindings);
        for mode in [FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR] {
            let out = run(mode, &dag, &bindings);
            for (o, e) in out.iter().zip(&base) {
                assert!(fusedml_linalg::approx_eq(o.as_scalar(), e.as_scalar(), 1e-9), "{mode:?}");
            }
        }
    }

    /// The revalidation guard: a plan optimized for one geometry must not be
    /// trusted on a reshaped DAG (the stale-plan bug).
    #[test]
    fn stale_plan_is_revalidated() {
        let build = |n: usize| {
            let mut b = fusedml_hop::DagBuilder::new();
            let x = b.read("X", n, 64, 1.0);
            let y = b.read("Y", n, 64, 1.0);
            let m = b.mult(x, y);
            let s = b.sum(m);
            b.build(vec![s])
        };
        let exec = Engine::new(FusionMode::Gen);
        let small = build(64);
        let plan = exec.plan_for(&small);
        // Reshaped DAG with the *stale* plan: the guard must re-optimize.
        let big = build(512);
        let bindings = bind(&[
            ("X", generate::rand_dense(512, 64, 0.0, 1.0, 21)),
            ("Y", generate::rand_dense(512, 64, 0.0, 1.0, 22)),
        ]);
        let expect = run(FusionMode::Base, &big, &bindings)[0].as_scalar();
        let got = exec.execute_with_plan(&big, &plan, &bindings)[0].as_scalar();
        assert!(fusedml_linalg::approx_eq(got, expect, 1e-9));
        let got_seq = exec.execute_with_plan_sequential(&big, &plan, &bindings)[0].as_scalar();
        assert!(fusedml_linalg::approx_eq(got_seq, expect, 1e-9));
    }
}
