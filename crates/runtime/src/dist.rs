//! Simulated distributed (Spark-like) backend: executes DAGs with real
//! kernels while accounting modeled network time for broadcasts, shuffles,
//! and collects (DESIGN.md substitution X2, paper §5.5).
//!
//! An operator executes "distributed" when its largest input exceeds the
//! driver's memory budget. Distributed operators charge:
//! * scans of large inputs at the aggregate executor bandwidth,
//! * *broadcasts* of small (side) inputs — `bytes × executors / net_bw`,
//!   the effect that makes eager fusion (Gen-FA) counterproductive in
//!   Table 6 ("additional vector inputs cause unnecessary broadcast
//!   overhead"),
//! * collects of small outputs back to the driver.
//!
//! Compute time is the measured wall time divided by the virtual cluster's
//! parallelism advantage over the local machine.
//!
//! Intermediates are liveness-tracked: values are freed at their last use
//! and the driver's resident footprint is accounted exactly. When the
//! tracked in-memory footprint exceeds the driver budget, whole live values
//! are *evicted* to local disk — largest serialized payload first — and
//! charged at `disk_bw`. The charge uses the same serializer byte counts
//! ([`fusedml_linalg::spill::serialized_bytes`]) and round-trip constant
//! ([`fusedml_linalg::spill::SPILL_ROUNDTRIP_FACTOR`]) as the engine's real
//! spill tier, so modeled and measured spill costs cannot drift apart.

use crate::engine::Engine;
use fusedml_core::optimizer::FusionPlan;
use fusedml_core::util::FxHashMap;
use fusedml_core::FusionMode;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::{HopDag, HopId};
use fusedml_linalg::matrix::Value;
use fusedml_linalg::spill::{self, SPILL_ROUNDTRIP_FACTOR};
use std::sync::Arc;
use std::time::Instant;

/// The virtual cluster (defaults follow the paper's 1+6 node setup, scaled).
#[derive(Clone, Copy, Debug)]
pub struct SimCluster {
    pub executors: usize,
    /// Point-to-point network bandwidth (bytes/s).
    pub net_bw: f64,
    /// Aggregate executor scan bandwidth relative to local scan speed.
    pub scan_speedup: f64,
    /// Driver memory budget in bytes; larger inputs go distributed, and a
    /// tracked resident footprint beyond it evicts to disk.
    pub local_budget: f64,
    /// Local-disk bandwidth (bytes/s) used for buffer-pool eviction and the
    /// read-back of evicted intermediates. Each eviction moves the value's
    /// *serialized* size (the real tier's on-disk format) through this
    /// bandwidth [`SPILL_ROUNDTRIP_FACTOR`] times (write + read-back).
    pub disk_bw: f64,
}

impl Default for SimCluster {
    fn default() -> Self {
        SimCluster {
            executors: 6,
            net_bw: 1.25e9,
            scan_speedup: 6.0,
            local_budget: 512.0 * 1024.0 * 1024.0,
            disk_bw: 5.0e8,
        }
    }
}

/// Accounting report of a simulated distributed execution.
#[derive(Clone, Debug, Default)]
pub struct DistReport {
    /// Total simulated time (compute + network + eviction).
    pub sim_seconds: f64,
    /// Compute part (measured, scaled by virtual parallelism).
    pub compute_seconds: f64,
    /// Network part (modeled broadcasts/shuffles/collects).
    pub network_seconds: f64,
    /// Modeled buffer-pool eviction time (write + read-back at disk_bw).
    pub eviction_seconds: f64,
    /// Number of broadcast events.
    pub broadcasts: usize,
    /// Number of operators executed distributed.
    pub dist_ops: usize,
    /// Number of whole-value eviction events (in-memory footprint exceeded
    /// the driver budget).
    pub evictions: usize,
    /// Total *serialized* bytes written to disk across eviction events (the
    /// same byte counts [`TieredStore`](fusedml_linalg::spill::TieredStore)
    /// would write for these values).
    pub evicted_bytes: f64,
    /// Peak tracked resident bytes (with frees at last use).
    pub peak_resident_bytes: f64,
    /// Tracked resident bytes (live values), updated as values materialize
    /// and die. Spilled bytes are still "resident" in this figure; the
    /// in-memory portion is `resident_bytes - spilled_bytes`.
    resident_bytes: f64,
    /// Bytes currently spilled to disk (subset of `resident_bytes`).
    spilled_bytes: f64,
}

/// Executes a DAG on the simulated cluster, returning values and the
/// accounting report.
pub fn execute_dist(
    engine: &Engine,
    dag: &HopDag,
    bindings: &Bindings,
    cluster: &SimCluster,
) -> (Vec<Value>, DistReport) {
    // The simulation runs real kernels on this thread: install the engine's
    // pool and kernel caches so fused operators resolve their pre-lowered
    // kernels (and recycle buffers) instead of re-lowering per execution.
    let _scope = engine.scope();
    let plan: Arc<FusionPlan> = match engine.mode() {
        FusionMode::Base | FusionMode::Fused => Arc::new(FusionPlan::default()),
        _ => engine.plan_for(dag),
    };
    let mut op_roots: FxHashMap<HopId, (usize, usize)> = FxHashMap::default();
    for (i, f) in plan.operators.iter().enumerate() {
        for (slot, &r) in f.roots.iter().enumerate() {
            op_roots.insert(r, (i, slot));
        }
    }
    let mut report = DistReport::default();
    let mut vals: Vec<Option<Value>> = vec![None; dag.len()];
    let mut spilled: Vec<bool> = vec![false; dag.len()];
    let mut live = Liveness::analyze(dag, &plan, &op_roots);
    for &root in dag.roots() {
        materialize(
            dag,
            &plan,
            &op_roots,
            bindings,
            cluster,
            &mut vals,
            &mut spilled,
            &mut report,
            &mut live,
            root,
        );
    }
    report.sim_seconds = report.compute_seconds + report.network_seconds + report.eviction_seconds;
    let outs = dag.roots().iter().map(|r| vals[r.index()].take().expect("root computed")).collect();
    (outs, report)
}

/// Read-occurrence refcounts over the demanded (plan-aware) graph, so the
/// simulation frees each value at its last use, exactly like the scheduled
/// local engine.
struct Liveness {
    reads_left: Vec<u32>,
}

impl Liveness {
    fn analyze(
        dag: &HopDag,
        plan: &FusionPlan,
        op_roots: &FxHashMap<HopId, (usize, usize)>,
    ) -> Liveness {
        let mut reads = vec![0u32; dag.len()];
        let mut demanded = vec![false; dag.len()];
        let mut stack: Vec<HopId> = dag.roots().to_vec();
        let charge = |reads: &mut Vec<u32>, stack: &mut Vec<HopId>, deps: &[HopId]| {
            for &d in deps {
                reads[d.index()] += 1;
                stack.push(d);
            }
        };
        while let Some(h) = stack.pop() {
            if demanded[h.index()] {
                continue;
            }
            demanded[h.index()] = true;
            if let Some(&(op_ix, _)) = op_roots.get(&h) {
                // The operator executes (and releases its inputs) once, even
                // with several roots: charge its reads once and mark every
                // root demanded.
                let f = &plan.operators[op_ix];
                for &r in &f.roots {
                    demanded[r.index()] = true;
                }
                let mut deps: Vec<HopId> = Vec::new();
                deps.extend(f.cplan.main.iter());
                deps.extend(&f.cplan.sides);
                deps.extend(&f.cplan.scalars);
                charge(&mut reads, &mut stack, &deps);
            } else {
                let inputs = dag.hop(h).inputs.clone();
                charge(&mut reads, &mut stack, &inputs);
            }
        }
        for &r in dag.roots() {
            reads[r.index()] += 1;
        }
        Liveness { reads_left: reads }
    }
}

/// Stores one freshly computed value and tracks the resident footprint.
/// While the in-memory portion exceeds the driver budget, whole live values
/// are evicted to disk, largest serialized payload first. The charge per
/// victim is `SPILL_ROUNDTRIP_FACTOR × serialized_bytes / disk_bw` — the
/// identical byte counts and round-trip constant the engine's real
/// [`TieredStore`](spill::TieredStore) pays, so the model cannot drift from
/// the measured tier. Leaves stay resident (the real tier never spills
/// caller-owned bindings) and values below [`spill::MIN_SPILL_BYTES`] are
/// not worth a file.
fn store_value(
    dag: &HopDag,
    cluster: &SimCluster,
    vals: &mut [Option<Value>],
    spilled: &mut [bool],
    report: &mut DistReport,
    hop: HopId,
    v: Value,
) {
    report.resident_bytes += bytes_of(&v);
    if report.resident_bytes > report.peak_resident_bytes {
        report.peak_resident_bytes = report.resident_bytes;
    }
    vals[hop.index()] = Some(v);
    while report.resident_bytes - report.spilled_bytes > cluster.local_budget {
        let victim = vals
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(Value::Matrix(m))
                    if !spilled[i]
                        && !dag.hop(HopId(i as u32)).kind.is_leaf()
                        && m.size_in_bytes() >= spill::MIN_SPILL_BYTES =>
                {
                    Some((i, spill::serialized_bytes(m) as f64, m.size_in_bytes() as f64))
                }
                _ => None,
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let Some((ix, file_bytes, mem_bytes)) = victim else {
            break; // nothing evictable left: proceed over budget, like the real tier
        };
        spilled[ix] = true;
        report.evictions += 1;
        report.evicted_bytes += file_bytes;
        report.eviction_seconds += SPILL_ROUNDTRIP_FACTOR * file_bytes / cluster.disk_bw;
        report.spilled_bytes += mem_bytes;
    }
}

/// Frees inputs whose last read this operator performed.
fn release_inputs(
    dag: &HopDag,
    vals: &mut [Option<Value>],
    spilled: &mut [bool],
    report: &mut DistReport,
    live: &mut Liveness,
    inputs: &[HopId],
) {
    let is_root = |h: HopId| dag.roots().contains(&h);
    for &i in inputs {
        let slot = &mut live.reads_left[i.index()];
        *slot = slot.saturating_sub(1);
        if *slot == 0 && !is_root(i) {
            if let Some(v) = vals[i.index()].take() {
                report.resident_bytes = (report.resident_bytes - bytes_of(&v)).max(0.0);
                if spilled[i.index()] {
                    // A dead value's on-disk copy is deleted with it.
                    spilled[i.index()] = false;
                    report.spilled_bytes = (report.spilled_bytes - bytes_of(&v)).max(0.0);
                }
                v.recycle();
            }
        }
    }
}

fn bytes_of(v: &Value) -> f64 {
    match v {
        Value::Scalar(_) => 8.0,
        Value::Matrix(m) => m.size_in_bytes() as f64,
    }
}

#[allow(clippy::too_many_arguments)] // threads the whole simulated-execution state through the recursion
fn materialize(
    dag: &HopDag,
    plan: &FusionPlan,
    op_roots: &FxHashMap<HopId, (usize, usize)>,
    bindings: &Bindings,
    cluster: &SimCluster,
    vals: &mut Vec<Option<Value>>,
    spilled: &mut Vec<bool>,
    report: &mut DistReport,
    live: &mut Liveness,
    hop: HopId,
) {
    if vals[hop.index()].is_some() {
        return;
    }
    // Fused operator?
    if let Some(&(op_ix, _)) = op_roots.get(&hop) {
        let f = &plan.operators[op_ix];
        let mut input_hops: Vec<HopId> = Vec::new();
        input_hops.extend(f.cplan.main.iter());
        input_hops.extend(f.cplan.sides.iter());
        input_hops.extend(f.cplan.scalars.iter());
        for &i in &input_hops {
            materialize(dag, plan, op_roots, bindings, cluster, vals, spilled, report, live, i);
        }
        let t0 = Instant::now();
        let get_matrix = |h: HopId| vals[h.index()].as_ref().expect("input").as_matrix();
        let main_val = f.cplan.main.map(get_matrix);
        let sides: Vec<crate::side::SideInput> =
            f.cplan.sides.iter().map(|&h| crate::side::SideInput::bind(&get_matrix(h))).collect();
        let scalars: Vec<f64> = f
            .cplan
            .scalars
            .iter()
            .map(|&h| vals[h.index()].as_ref().expect("scalar").as_scalar())
            .collect();
        let outs = crate::spoof::execute(
            &f.op.spec,
            main_val.as_ref(),
            &sides,
            &scalars,
            f.cplan.iter_rows,
            f.cplan.iter_cols,
        );
        let wall = t0.elapsed().as_secs_f64();
        account(
            dag,
            cluster,
            report,
            wall,
            &input_hops
                .iter()
                .map(|&h| bytes_of(vals[h.index()].as_ref().unwrap()))
                .collect::<Vec<_>>(),
            outs.iter().map(|m| m.size_in_bytes() as f64).sum(),
        );
        for (slot, &r) in f.roots.iter().enumerate() {
            let m = &outs[slot];
            let v = if dag.hop(r).is_scalar() && m.is_scalar_shaped() {
                Value::Scalar(m.get(0, 0))
            } else {
                Value::Matrix(m.clone())
            };
            store_value(dag, cluster, vals, spilled, report, r, v);
        }
        release_inputs(dag, vals, spilled, report, live, &input_hops);
        return;
    }
    // Basic operator.
    let inputs = dag.hop(hop).inputs.clone();
    for &i in &inputs {
        materialize(dag, plan, op_roots, bindings, cluster, vals, spilled, report, live, i);
    }
    let t0 = Instant::now();
    let v = interp::eval_op(dag, hop, vals, bindings);
    let wall = t0.elapsed().as_secs_f64();
    if !dag.hop(hop).kind.is_leaf() {
        let in_bytes: Vec<f64> =
            inputs.iter().map(|&h| bytes_of(vals[h.index()].as_ref().unwrap())).collect();
        account(dag, cluster, report, wall, &in_bytes, bytes_of(&v));
    }
    store_value(dag, cluster, vals, spilled, report, hop, v);
    release_inputs(dag, vals, spilled, report, live, &inputs);
}

/// Charges one operator's simulated time.
fn account(
    _dag: &HopDag,
    cluster: &SimCluster,
    report: &mut DistReport,
    wall: f64,
    input_bytes: &[f64],
    out_bytes: f64,
) {
    let max_in = input_bytes.iter().copied().fold(0.0f64, f64::max);
    if max_in > cluster.local_budget {
        // Distributed operator.
        report.dist_ops += 1;
        report.compute_seconds += wall / cluster.scan_speedup;
        for &b in input_bytes {
            if b <= cluster.local_budget && b > 8.0 {
                // Broadcast a small input to every executor.
                report.network_seconds += b * cluster.executors as f64 / cluster.net_bw;
                report.broadcasts += 1;
            }
        }
        if out_bytes <= cluster.local_budget {
            // Collect the result to the driver.
            report.network_seconds += out_bytes / cluster.net_bw;
        } else {
            // Shuffle-write large output.
            report.network_seconds += out_bytes / (cluster.net_bw * cluster.executors as f64);
        }
    } else {
        report.compute_seconds += wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_hop::DagBuilder;
    use fusedml_linalg::generate;

    fn bind(pairs: &[(&str, fusedml_linalg::Matrix)]) -> Bindings {
        pairs.iter().map(|(n, m)| (n.to_string(), m.clone())).collect()
    }

    /// A "large" X (beyond the tiny test budget) with fused vector ops: the
    /// fuse-all plan must charge broadcasts for the vector side inputs.
    #[test]
    fn broadcast_accounting_penalizes_fused_vectors() {
        let (n, m) = (2000, 100);
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let w = b.read("w", n, 1, 1.0);
        let prod = b.mult(x, w); // matrix ⊙ broadcast col-vector
        let s = b.sum(prod);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(n, m, -1.0, 1.0, 1)),
            ("w", generate::rand_dense(n, 1, -1.0, 1.0, 2)),
        ]);
        // Budget below X's 1.6 MB so the op counts as distributed.
        let cluster = SimCluster { local_budget: 1e6, ..SimCluster::default() };
        let exec = Engine::new(FusionMode::GenFA);
        let (outs, report) = execute_dist(&exec, &dag, &bindings, &cluster);
        let base = Engine::new(FusionMode::Base).execute(&dag, &bindings).into_values();
        assert!(fusedml_linalg::approx_eq(outs[0].as_scalar(), base[0].as_scalar(), 1e-9));
        assert!(report.dist_ops >= 1);
        assert!(report.broadcasts >= 1, "vector side input must broadcast");
        assert!(report.network_seconds > 0.0);
    }

    #[test]
    fn local_ops_charge_no_network() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 50, 50, 1.0);
        let y = b.read("Y", 50, 50, 1.0);
        let m = b.mult(x, y);
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(50, 50, -1.0, 1.0, 3)),
            ("Y", generate::rand_dense(50, 50, -1.0, 1.0, 4)),
        ]);
        let exec = Engine::new(FusionMode::Gen);
        let (_, report) = execute_dist(&exec, &dag, &bindings, &SimCluster::default());
        assert_eq!(report.dist_ops, 0);
        assert_eq!(report.network_seconds, 0.0);
    }

    /// A long elementwise chain under a tight budget: the tracked peak must
    /// sit far below the hold-everything total (frees at last use), and the
    /// excess beyond the budget must be charged as eviction time.
    #[test]
    fn footprint_is_tracked_and_eviction_charged() {
        let (n, m) = (600, 400); // 1.92 MB per intermediate
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let mut cur = x;
        for _ in 0..6 {
            cur = b.exp(cur);
        }
        let s = b.sum(cur);
        let dag = b.build(vec![s]);
        let bindings = bind(&[("X", generate::rand_dense(n, m, -0.1, 0.1, 7))]);
        let exec = Engine::new(FusionMode::Base);
        // Budget below two live intermediates (3.84 MB): the chain must
        // evict even though frees keep the true peak at exactly two values.
        let cluster = SimCluster { local_budget: 3e6, ..SimCluster::default() };
        let (_, report) = execute_dist(&exec, &dag, &bindings, &cluster);
        let one = 8.0 * (n * m) as f64;
        // Hold-everything would be 7 matrices ≈ 13.4 MB; with frees the peak
        // stays within input + two live intermediates.
        assert!(report.peak_resident_bytes <= 3.0 * one + 64.0, "{}", report.peak_resident_bytes);
        assert!(report.evictions >= 1, "budget of 3 MB must trigger eviction");
        assert!(report.evicted_bytes > 0.0);
        assert!(report.eviction_seconds > 0.0);
        assert!(report.sim_seconds >= report.eviction_seconds);
    }

    /// With a comfortable budget nothing evicts, but the peak is reported.
    #[test]
    fn no_eviction_within_budget() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 100, 1.0);
        let e = b.exp(x);
        let s = b.sum(e);
        let dag = b.build(vec![s]);
        let bindings = bind(&[("X", generate::rand_dense(100, 100, -1.0, 1.0, 8))]);
        let exec = Engine::new(FusionMode::Base);
        let (_, report) = execute_dist(&exec, &dag, &bindings, &SimCluster::default());
        assert_eq!(report.evictions, 0);
        assert_eq!(report.eviction_seconds, 0.0);
        assert!(report.peak_resident_bytes >= 2.0 * 8e4);
    }

    #[test]
    fn base_mode_runs_distributed_accounting_per_op() {
        let (n, m) = (2000, 100);
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let y = b.read("Y", n, m, 1.0);
        let p = b.mult(x, y);
        let s = b.sum(p);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(n, m, -1.0, 1.0, 5)),
            ("Y", generate::rand_dense(n, m, -1.0, 1.0, 6)),
        ]);
        let cluster = SimCluster { local_budget: 1e6, ..SimCluster::default() };
        let exec = Engine::new(FusionMode::Base);
        let (_, report) = execute_dist(&exec, &dag, &bindings, &cluster);
        // Both the multiply and the sum see the large input.
        assert!(report.dist_ops >= 2);
    }
}
