//! Hand-coded fused operators: the `Fused` baseline of the evaluation
//! (SystemML's default before automatic codegen), implementing a fixed set
//! of two-to-three-operator patterns matched structurally at execution time
//! (paper §1: such operators "are usually limited to fixed patterns of few
//! operators").
//!
//! Patterns (mirroring SystemML's hand-coded operator set):
//! * `tak+*` — `sum(X ⊙ Y)` / `sum(X ⊙ Y ⊙ Z)` without intermediates,
//! * `mmchain` — `t(X) %*% (X %*% v)` and `t(X) %*% (w ⊙ (X %*% v))`
//!   (matrix-*vector* chains only; the paper notes the hand-coded operator
//!   does not cover `X^T(XV)` with matrix `V`),
//! * `wcemm` — weighted cross-entropy `sum(X ⊙ log(U V^T + eps))`,
//! * `wdivmm`-style — `((X != 0) ⊙ (U V^T)) %*% V` and the transposed
//!   variant, the ALS-CG update kernels.

use crate::exec::ExecStats;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::{HopDag, HopId, OpKind};
use fusedml_linalg::matrix::Value;
use fusedml_linalg::ops::{AggDir, AggOp, BinaryOp, UnaryOp};
use fusedml_linalg::{par, primitives as prim, DenseMatrix, Matrix};
use std::sync::atomic::Ordering;

/// Interprets a DAG with hand-coded fused operators applied where patterns
/// match; everything else executes as basic operators.
pub fn interpret(dag: &HopDag, bindings: &Bindings, stats: &ExecStats) -> Vec<Value> {
    let live = dag.live_set();
    let mut vals: Vec<Option<Value>> = vec![None; dag.len()];
    for h in dag.iter() {
        if !live[h.id.index()] || vals[h.id.index()].is_some() {
            continue;
        }
        if let Some(v) = try_patterns(dag, h.id, &vals, bindings) {
            stats.handcoded_ops.fetch_add(1, Ordering::Relaxed);
            vals[h.id.index()] = Some(v);
            continue;
        }
        stats.basic_ops.fetch_add(1, Ordering::Relaxed);
        vals[h.id.index()] = Some(interp::eval_op(dag, h.id, &vals, bindings));
    }
    dag.roots().iter().map(|r| vals[r.index()].clone().expect("root computed")).collect()
}

/// Structural helpers.
fn kind(dag: &HopDag, h: HopId) -> &OpKind {
    &dag.hop(h).kind
}

fn value_of(dag: &HopDag, h: HopId, vals: &[Option<Value>], bindings: &Bindings) -> Matrix {
    match &vals[h.index()] {
        Some(v) => v.as_matrix(),
        None => {
            // Inputs of a matched pattern might not be materialized yet when
            // the pattern consumed the intermediate: evaluate leaves/ops
            // recursively (cheap: only pattern inputs).
            match kind(dag, h) {
                OpKind::Read { name } => {
                    bindings.get(name).unwrap_or_else(|| panic!("unbound input '{name}'")).clone()
                }
                _ => {
                    // Evaluate via the reference interpreter on demand.
                    let mut local: Vec<Option<Value>> = vals.to_vec();
                    for hh in dag.iter() {
                        if hh.id > h {
                            break;
                        }
                        if local[hh.id.index()].is_none() {
                            local[hh.id.index()] =
                                Some(interp::eval_op(dag, hh.id, &local, bindings));
                        }
                    }
                    local[h.index()].as_ref().expect("evaluated").as_matrix()
                }
            }
        }
    }
}

/// Attempts all hand-coded patterns at `hop`.
fn try_patterns(
    dag: &HopDag,
    hop: HopId,
    vals: &[Option<Value>],
    bindings: &Bindings,
) -> Option<Value> {
    try_tak_plus_mult(dag, hop, vals, bindings)
        .or_else(|| try_mmchain(dag, hop, vals, bindings))
        .or_else(|| try_wcemm(dag, hop, vals, bindings))
        .or_else(|| try_wdivmm(dag, hop, vals, bindings))
}

/// `tak+*`: `sum(A ⊙ B)` or `sum(A ⊙ B ⊙ C)`.
fn try_tak_plus_mult(
    dag: &HopDag,
    hop: HopId,
    vals: &[Option<Value>],
    bindings: &Bindings,
) -> Option<Value> {
    let OpKind::Agg { op: AggOp::Sum, dir: AggDir::Full } = kind(dag, hop) else {
        return None;
    };
    let inner = dag.hop(hop).inputs[0];
    let OpKind::Binary { op: BinaryOp::Mult } = kind(dag, inner) else {
        return None;
    };
    let [a, b] = dag.hop(inner).inputs[..] else {
        return None;
    };
    // Optional third factor.
    let (ops, third): (Vec<HopId>, Option<HopId>) = match kind(dag, a) {
        OpKind::Binary { op: BinaryOp::Mult } => {
            let [a1, a2] = dag.hop(a).inputs[..] else { return None };
            (vec![a1, a2], Some(b))
        }
        _ => (vec![a, b], None),
    };
    // All factors must be same-geometry matrices (no broadcasts here).
    let g = dag.hop(ops[0]).size;
    let all_same = ops
        .iter()
        .chain(third.iter())
        .all(|&f| dag.hop(f).size.rows == g.rows && dag.hop(f).size.cols == g.cols);
    if !all_same || g.cells() <= 1 {
        return None;
    }
    let ma = value_of(dag, ops[0], vals, bindings);
    let mb = value_of(dag, ops[1], vals, bindings);
    let mc = third.map(|t| value_of(dag, t, vals, bindings));
    let (rows, cols) = (ma.rows(), ma.cols());
    let acc = par::par_map_reduce(
        rows,
        cols.max(1) * 2,
        0.0f64,
        |lo, hi| {
            let mut acc = 0.0;
            for r in lo..hi {
                for c in 0..cols {
                    let v = ma.get(r, c) * mb.get(r, c) * mc.as_ref().map_or(1.0, |m| m.get(r, c));
                    acc += v;
                }
            }
            acc
        },
        |x, y| x + y,
    );
    Some(Value::Scalar(acc))
}

/// `mmchain`: `t(X) %*% (X %*% v)` or `t(X) %*% (w ⊙ (X %*% v))`, vector `v`.
fn try_mmchain(
    dag: &HopDag,
    hop: HopId,
    vals: &[Option<Value>],
    bindings: &Bindings,
) -> Option<Value> {
    if *kind(dag, hop) != OpKind::MatMult {
        return None;
    }
    let [l, rr] = dag.hop(hop).inputs[..] else { return None };
    let OpKind::Transpose = kind(dag, l) else { return None };
    let x1 = dag.hop(l).inputs[0];
    // Case 1: rhs = mm(X, v); Case 2: rhs = w ⊙ mm(X, v).
    let (w, inner_mm) = match kind(dag, rr) {
        OpKind::MatMult => (None, rr),
        OpKind::Binary { op: BinaryOp::Mult } => {
            let [wa, wb] = dag.hop(rr).inputs[..] else { return None };
            if *kind(dag, wb) == OpKind::MatMult {
                (Some(wa), wb)
            } else if *kind(dag, wa) == OpKind::MatMult {
                (Some(wb), wa)
            } else {
                return None;
            }
        }
        _ => return None,
    };
    let [x2, v] = dag.hop(inner_mm).inputs[..] else { return None };
    if x1 != x2 || dag.hop(v).size.cols != 1 {
        return None; // hand-coded mmchain only covers the same X and vectors
    }
    if let Some(w) = w {
        if dag.hop(w).size.cols != 1 || dag.hop(w).size.rows != dag.hop(x1).size.rows {
            return None;
        }
    }
    let xm = value_of(dag, x1, vals, bindings);
    let vm = value_of(dag, v, vals, bindings).to_dense().into_values();
    let wm = w.map(|wh| value_of(dag, wh, vals, bindings));
    let (n, m) = (xm.rows(), xm.cols());
    // Single pass: acc += X_r * (w_r * dot(X_r, v)).
    let acc = par::par_map_reduce(
        n,
        m * 2,
        vec![0.0f64; m],
        |lo, hi| {
            let mut acc = vec![0.0f64; m];
            let mut row = vec![0.0f64; m];
            for r in lo..hi {
                match &xm {
                    Matrix::Dense(d) => row.copy_from_slice(d.row(r)),
                    Matrix::Sparse(s) => {
                        row.fill(0.0);
                        for (c, v) in s.row_iter(r) {
                            row[c] = v;
                        }
                    }
                }
                let mut t = prim::dot_product(&row, &vm, 0, 0, m);
                if let Some(wv) = &wm {
                    t *= wv.get(r, 0);
                }
                if t != 0.0 {
                    prim::vect_mult_add(&row, t, &mut acc, 0, 0, m);
                }
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    );
    Some(Value::Matrix(Matrix::dense(DenseMatrix::new(m, 1, acc))))
}

/// `wcemm`: `sum(X ⊙ log(U V^T + eps))` over the non-zeros of sparse X.
fn try_wcemm(
    dag: &HopDag,
    hop: HopId,
    vals: &[Option<Value>],
    bindings: &Bindings,
) -> Option<Value> {
    let OpKind::Agg { op: AggOp::Sum, dir: AggDir::Full } = kind(dag, hop) else {
        return None;
    };
    let prod = dag.hop(hop).inputs[0];
    let OpKind::Binary { op: BinaryOp::Mult } = kind(dag, prod) else { return None };
    let [x, lg] = dag.hop(prod).inputs[..] else { return None };
    let OpKind::Unary { op: UnaryOp::Log } = kind(dag, lg) else { return None };
    let plus = dag.hop(lg).inputs[0];
    let OpKind::Binary { op: BinaryOp::Add } = kind(dag, plus) else { return None };
    let [uvt, eps] = dag.hop(plus).inputs[..] else { return None };
    if !dag.hop(eps).is_scalar() || *kind(dag, uvt) != OpKind::MatMult {
        return None;
    }
    let [u, vt] = dag.hop(uvt).inputs[..] else { return None };
    let OpKind::Transpose = kind(dag, vt) else { return None };
    let v = dag.hop(vt).inputs[0];

    let xm = value_of(dag, x, vals, bindings);
    let um = value_of(dag, u, vals, bindings).to_dense();
    let vm = value_of(dag, v, vals, bindings).to_dense();
    let epsv = match &vals[eps.index()] {
        Some(val) => val.as_scalar(),
        None => match kind(dag, eps) {
            OpKind::Literal { value } => *value,
            _ => return None,
        },
    };
    let r = um.cols();
    let xs = xm.to_sparse();
    let acc = par::par_map_reduce(
        xs.rows(),
        (xs.nnz() / xs.rows().max(1)).max(1) * r,
        0.0f64,
        |lo, hi| {
            let mut acc = 0.0;
            for i in lo..hi {
                for (j, a) in xs.row_iter(i) {
                    let uv = prim::dot_product(um.row(i), vm.row(j), 0, 0, r);
                    acc += a * (uv + epsv).ln();
                }
            }
            acc
        },
        |a, b| a + b,
    );
    Some(Value::Scalar(acc))
}

/// `wdivmm`-style: `((X != 0) ⊙ (U V^T)) %*% V` (right) or
/// `t((X != 0) ⊙ (U V^T)) %*% U` (left).
fn try_wdivmm(
    dag: &HopDag,
    hop: HopId,
    vals: &[Option<Value>],
    bindings: &Bindings,
) -> Option<Value> {
    if *kind(dag, hop) != OpKind::MatMult {
        return None;
    }
    let [l, s] = dag.hop(hop).inputs[..] else { return None };
    // Right form: l = masked plane, s = V. Left form: l = t(masked plane).
    let (plane, left) = match kind(dag, l) {
        OpKind::Transpose => (dag.hop(l).inputs[0], true),
        _ => (l, false),
    };
    let OpKind::Binary { op: BinaryOp::Mult } = kind(dag, plane) else { return None };
    let [mask, uvt] = dag.hop(plane).inputs[..] else { return None };
    let OpKind::Binary { op: BinaryOp::Neq } = kind(dag, mask) else { return None };
    let x = dag.hop(mask).inputs[0];
    if *kind(dag, uvt) != OpKind::MatMult {
        return None;
    }
    let [u, vt] = dag.hop(uvt).inputs[..] else { return None };
    let OpKind::Transpose = kind(dag, vt) else { return None };
    let v = dag.hop(vt).inputs[0];

    let xm = value_of(dag, x, vals, bindings).to_sparse();
    let um = value_of(dag, u, vals, bindings).to_dense();
    let vm = value_of(dag, v, vals, bindings).to_dense();
    let sm = value_of(dag, s, vals, bindings).to_dense();
    let r = um.cols();
    let k = sm.cols();
    let (n, m) = (xm.rows(), xm.cols());
    if left {
        // out (m×k): out[j,:] += w_ij * S[i,:]
        let acc = par::par_map_reduce(
            n,
            (xm.nnz() / n.max(1)).max(1) * r,
            vec![0.0f64; m * k],
            |lo, hi| {
                let mut acc = vec![0.0f64; m * k];
                for i in lo..hi {
                    for (j, _a) in xm.row_iter(i) {
                        let w = prim::dot_product(um.row(i), vm.row(j), 0, 0, r);
                        prim::vect_mult_add(sm.row(i), w, &mut acc[j * k..(j + 1) * k], 0, 0, k);
                    }
                }
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        Some(Value::Matrix(Matrix::dense(DenseMatrix::new(m, k, acc))))
    } else {
        let mut out = vec![0.0f64; n * k];
        par::par_rows_mut(&mut out, n, k, (xm.nnz() / n.max(1)).max(1) * r, |i, orow| {
            for (j, _a) in xm.row_iter(i) {
                let w = prim::dot_product(um.row(i), vm.row(j), 0, 0, r);
                prim::vect_mult_add(sm.row(j), w, orow, 0, 0, k);
            }
        });
        Some(Value::Matrix(Matrix::dense(DenseMatrix::new(n, k, out))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_hop::DagBuilder;
    use fusedml_linalg::generate;

    fn bind(pairs: &[(&str, Matrix)]) -> Bindings {
        pairs.iter().map(|(n, m)| (n.to_string(), m.clone())).collect()
    }

    fn run_both(dag: &HopDag, bindings: &Bindings) -> (Vec<Value>, Vec<Value>, usize) {
        let stats = ExecStats::default();
        let fused = interpret(dag, bindings, &stats);
        let base = interp::interpret(dag, bindings);
        let (_, hc, _) = stats.snapshot();
        (fused, base, hc)
    }

    #[test]
    fn tak_matches_base_and_matches_pattern() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 80, 1.0);
        let y = b.read("Y", 100, 80, 1.0);
        let z = b.read("Z", 100, 80, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(100, 80, -1.0, 1.0, 1)),
            ("Y", generate::rand_dense(100, 80, -1.0, 1.0, 2)),
            ("Z", generate::rand_dense(100, 80, -1.0, 1.0, 3)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "tak+* must match");
        assert!(fusedml_linalg::approx_eq(fused[0].as_scalar(), base[0].as_scalar(), 1e-9));
    }

    #[test]
    fn mmchain_matches_base() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 500, 60, 1.0);
        let v = b.read("v", 60, 1, 1.0);
        let xv = b.mm(x, v);
        let xt = b.t(x);
        let out = b.mm(xt, xv);
        let dag = b.build(vec![out]);
        let bindings = bind(&[
            ("X", generate::rand_dense(500, 60, -1.0, 1.0, 4)),
            ("v", generate::rand_dense(60, 1, -1.0, 1.0, 5)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "mmchain must match");
        assert!(fused[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
    }

    #[test]
    fn mmchain_does_not_match_matrix_rhs() {
        // X^T (X V) with matrix V is NOT covered by the hand-coded operator
        // (paper §5.2: "the hand-coded mmchain operator only applies to
        // matrix-vector chains").
        let mut b = DagBuilder::new();
        let x = b.read("X", 200, 50, 1.0);
        let v = b.read("V", 50, 2, 1.0);
        let xv = b.mm(x, v);
        let xt = b.t(x);
        let out = b.mm(xt, xv);
        let dag = b.build(vec![out]);
        let bindings = bind(&[
            ("X", generate::rand_dense(200, 50, -1.0, 1.0, 6)),
            ("V", generate::rand_dense(50, 2, -1.0, 1.0, 7)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert_eq!(hc, 0, "no hand-coded operator applies");
        assert!(fused[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
    }

    #[test]
    fn wcemm_matches_base() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 300, 250, 0.02);
        let u = b.read("U", 300, 10, 1.0);
        let v = b.read("V", 250, 10, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let eps = b.lit(1e-15);
        let plus = b.add(uvt, eps);
        let lg = b.log(plus);
        let prod = b.mult(x, lg);
        let s = b.sum(prod);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_matrix(300, 250, 1.0, 5.0, 0.02, 8)),
            ("U", generate::rand_dense(300, 10, 0.1, 1.0, 9)),
            ("V", generate::rand_dense(250, 10, 0.1, 1.0, 10)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "wcemm must match");
        assert!(fusedml_linalg::approx_eq(fused[0].as_scalar(), base[0].as_scalar(), 1e-9));
    }

    #[test]
    fn wdivmm_right_matches_base() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 200, 150, 0.05);
        let u = b.read("U", 200, 8, 1.0);
        let v = b.read("V", 150, 8, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let zero = b.lit(0.0);
        let mask = b.neq(x, zero);
        let w = b.mult(mask, uvt);
        let out = b.mm(w, v);
        let dag = b.build(vec![out]);
        let bindings = bind(&[
            ("X", generate::rand_matrix(200, 150, 1.0, 5.0, 0.05, 11)),
            ("U", generate::rand_dense(200, 8, 0.1, 1.0, 12)),
            ("V", generate::rand_dense(150, 8, 0.1, 1.0, 13)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "wdivmm must match");
        assert!(fused[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
    }
}
