//! Hand-coded fused operators: the `Fused` baseline of the evaluation
//! (SystemML's default before automatic codegen), implementing a fixed set
//! of two-to-three-operator patterns matched structurally at compile time
//! (paper §1: such operators "are usually limited to fixed patterns of few
//! operators").
//!
//! Patterns (mirroring SystemML's hand-coded operator set):
//! * `tak+*` — `sum(X ⊙ Y)` / `sum(X ⊙ Y ⊙ Z)` without intermediates,
//! * `mmchain` — `t(X) %*% (X %*% v)` and `t(X) %*% (w ⊙ (X %*% v))`
//!   (matrix-*vector* chains only; the paper notes the hand-coded operator
//!   does not cover `X^T(XV)` with matrix `V`),
//! * `wcemm` — weighted cross-entropy `sum(X ⊙ log(U V^T + eps))`,
//! * `wdivmm`-style — `((X != 0) ⊙ (U V^T)) %*% V` and the transposed
//!   variant, the ALS-CG update kernels.
//!
//! Matching ([`match_patterns`]) is purely structural and value-free, so the
//! scheduled executor can treat each matched instance as one task with
//! explicit input dependencies; execution ([`exec_operator`]) receives the
//! materialized input values. The demand-driven sequential [`interpret`] is
//! retained as the differential-test oracle for the `Fused` mode.

use crate::exec::ExecStats;
use fusedml_core::util::FxHashMap;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::{HopDag, HopId, OpKind};
use fusedml_linalg::matrix::Value;
use fusedml_linalg::ops::{AggDir, AggOp, BinaryOp, UnaryOp};
use fusedml_linalg::{par, pool, primitives as prim, DenseMatrix, Matrix};
use std::sync::atomic::Ordering;

/// The concrete hand-coded kernel a matched pattern executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HcKind {
    /// `sum(A ⊙ B [⊙ C])`; inputs `[a, b]` or `[a, b, c]`.
    TakPlusMult,
    /// `t(X) %*% ([w ⊙] (X %*% v))`; inputs `[x, v]` or `[x, v, w]`.
    MmChain,
    /// `sum(X ⊙ log(U Vᵀ + eps))`; inputs `[x, u, v, eps]`.
    Wcemm,
    /// `((X != 0) ⊙ (U Vᵀ)) %*% S` (right) / `t(…) %*% U`-style (left);
    /// inputs `[x, u, v, s]`.
    Wdivmm { left: bool },
}

/// A structurally matched hand-coded operator instance rooted at one hop.
#[derive(Clone, Debug)]
pub struct HcOperator {
    /// The hop whose value this operator produces.
    pub root: HopId,
    /// The values the executor must materialize before running it.
    pub inputs: Vec<HopId>,
    kind: HcKind,
}

/// Structurally matches all hand-coded patterns over the live hops of a DAG,
/// returning `root hop → operator`. No values are consulted.
pub fn match_patterns(dag: &HopDag) -> FxHashMap<HopId, HcOperator> {
    let live = dag.live_set();
    let mut out = FxHashMap::default();
    for h in dag.iter() {
        if !live[h.id.index()] {
            continue;
        }
        if let Some(hc) = try_match(dag, h.id) {
            out.insert(h.id, hc);
        }
    }
    out
}

/// Interprets a DAG with hand-coded fused operators applied where patterns
/// match; everything else executes as basic operators. Demand-driven and
/// sequential — this is the `Fused`-mode oracle for the scheduled executor.
pub fn interpret(dag: &HopDag, bindings: &Bindings, stats: &ExecStats) -> Vec<Value> {
    let patterns = match_patterns(dag);
    let mut vals: Vec<Option<Value>> = vec![None; dag.len()];
    for &root in dag.roots() {
        materialize(dag, &patterns, bindings, &mut vals, stats, root);
    }
    dag.roots().iter().map(|r| vals[r.index()].take().expect("root computed")).collect()
}

fn materialize(
    dag: &HopDag,
    patterns: &FxHashMap<HopId, HcOperator>,
    bindings: &Bindings,
    vals: &mut Vec<Option<Value>>,
    stats: &ExecStats,
    hop: HopId,
) {
    if vals[hop.index()].is_some() {
        return;
    }
    if let Some(hc) = patterns.get(&hop) {
        for &i in &hc.inputs {
            materialize(dag, patterns, bindings, vals, stats, i);
        }
        let inputs: Vec<Value> =
            hc.inputs.iter().map(|&i| vals[i.index()].clone().expect("input computed")).collect();
        stats.handcoded_ops.fetch_add(1, Ordering::Relaxed);
        vals[hop.index()] = Some(exec_operator(hc, &inputs));
        return;
    }
    let inputs = dag.hop(hop).inputs.clone();
    for &i in &inputs {
        materialize(dag, patterns, bindings, vals, stats, i);
    }
    if !dag.hop(hop).kind.is_leaf() {
        stats.basic_ops.fetch_add(1, Ordering::Relaxed);
    }
    let v = interp::eval_op(dag, hop, vals, bindings);
    vals[hop.index()] = Some(v);
}

/// Structural helpers.
fn kind(dag: &HopDag, h: HopId) -> &OpKind {
    &dag.hop(h).kind
}

/// Attempts all hand-coded patterns at `hop`.
fn try_match(dag: &HopDag, hop: HopId) -> Option<HcOperator> {
    match_tak_plus_mult(dag, hop)
        .or_else(|| match_mmchain(dag, hop))
        .or_else(|| match_wcemm(dag, hop))
        .or_else(|| match_wdivmm(dag, hop))
}

/// Executes a matched operator over its materialized input values (in
/// [`HcOperator::inputs`] order).
pub fn exec_operator(hc: &HcOperator, inputs: &[Value]) -> Value {
    debug_assert_eq!(inputs.len(), hc.inputs.len());
    match hc.kind {
        HcKind::TakPlusMult => exec_tak_plus_mult(inputs),
        HcKind::MmChain => exec_mmchain(inputs),
        HcKind::Wcemm => exec_wcemm(inputs),
        HcKind::Wdivmm { left } => exec_wdivmm(inputs, left),
    }
}

// ---------------------------------------------------------------------------
// `tak+*`: `sum(A ⊙ B)` or `sum(A ⊙ B ⊙ C)`.
// ---------------------------------------------------------------------------

fn match_tak_plus_mult(dag: &HopDag, hop: HopId) -> Option<HcOperator> {
    let OpKind::Agg { op: AggOp::Sum, dir: AggDir::Full } = kind(dag, hop) else {
        return None;
    };
    let inner = dag.hop(hop).inputs[0];
    let OpKind::Binary { op: BinaryOp::Mult } = kind(dag, inner) else {
        return None;
    };
    let [a, b] = dag.hop(inner).inputs[..] else {
        return None;
    };
    // Optional third factor.
    let (ops, third): (Vec<HopId>, Option<HopId>) = match kind(dag, a) {
        OpKind::Binary { op: BinaryOp::Mult } => {
            let [a1, a2] = dag.hop(a).inputs[..] else { return None };
            (vec![a1, a2], Some(b))
        }
        _ => (vec![a, b], None),
    };
    // All factors must be same-geometry matrices (no broadcasts here).
    let g = dag.hop(ops[0]).size;
    let all_same = ops
        .iter()
        .chain(third.iter())
        .all(|&f| dag.hop(f).size.rows == g.rows && dag.hop(f).size.cols == g.cols);
    if !all_same || g.cells() <= 1 {
        return None;
    }
    let mut inputs = ops;
    inputs.extend(third);
    Some(HcOperator { root: hop, inputs, kind: HcKind::TakPlusMult })
}

fn exec_tak_plus_mult(inputs: &[Value]) -> Value {
    let ma = inputs[0].as_matrix();
    let mb = inputs[1].as_matrix();
    let mc = inputs.get(2).map(|v| v.as_matrix());
    let (rows, cols) = (ma.rows(), ma.cols());
    let acc = par::par_map_reduce(
        rows,
        cols.max(1) * 2,
        0.0f64,
        |lo, hi| {
            let mut acc = 0.0;
            for r in lo..hi {
                for c in 0..cols {
                    let v = ma.get(r, c) * mb.get(r, c) * mc.as_ref().map_or(1.0, |m| m.get(r, c));
                    acc += v;
                }
            }
            acc
        },
        |x, y| x + y,
    );
    Value::Scalar(acc)
}

// ---------------------------------------------------------------------------
// `mmchain`: `t(X) %*% (X %*% v)` or `t(X) %*% (w ⊙ (X %*% v))`, vector `v`.
// ---------------------------------------------------------------------------

fn match_mmchain(dag: &HopDag, hop: HopId) -> Option<HcOperator> {
    if *kind(dag, hop) != OpKind::MatMult {
        return None;
    }
    let [l, rr] = dag.hop(hop).inputs[..] else { return None };
    let OpKind::Transpose = kind(dag, l) else { return None };
    let x1 = dag.hop(l).inputs[0];
    // Case 1: rhs = mm(X, v); Case 2: rhs = w ⊙ mm(X, v).
    let (w, inner_mm) = match kind(dag, rr) {
        OpKind::MatMult => (None, rr),
        OpKind::Binary { op: BinaryOp::Mult } => {
            let [wa, wb] = dag.hop(rr).inputs[..] else { return None };
            if *kind(dag, wb) == OpKind::MatMult {
                (Some(wa), wb)
            } else if *kind(dag, wa) == OpKind::MatMult {
                (Some(wb), wa)
            } else {
                return None;
            }
        }
        _ => return None,
    };
    let [x2, v] = dag.hop(inner_mm).inputs[..] else { return None };
    if x1 != x2 || dag.hop(v).size.cols != 1 {
        return None; // hand-coded mmchain only covers the same X and vectors
    }
    if let Some(w) = w {
        if dag.hop(w).size.cols != 1 || dag.hop(w).size.rows != dag.hop(x1).size.rows {
            return None;
        }
    }
    let mut inputs = vec![x1, v];
    inputs.extend(w);
    Some(HcOperator { root: hop, inputs, kind: HcKind::MmChain })
}

fn exec_mmchain(inputs: &[Value]) -> Value {
    let xm = inputs[0].as_matrix();
    let vm = inputs[1].as_matrix().to_dense().into_values();
    let wm = inputs.get(2).map(|v| v.as_matrix());
    let (n, m) = (xm.rows(), xm.cols());
    // Single pass: acc += X_r * (w_r * dot(X_r, v)).
    let acc = par::par_map_reduce(
        n,
        m * 2,
        vec![0.0f64; m],
        |lo, hi| {
            let mut acc = vec![0.0f64; m];
            let mut row = vec![0.0f64; m];
            for r in lo..hi {
                match &xm {
                    Matrix::Dense(d) => row.copy_from_slice(d.row(r)),
                    Matrix::Sparse(s) => {
                        row.fill(0.0);
                        for (c, v) in s.row_iter(r) {
                            row[c] = v;
                        }
                    }
                }
                let mut t = prim::dot_product(&row, &vm, 0, 0, m);
                if let Some(wv) = &wm {
                    t *= wv.get(r, 0);
                }
                if t != 0.0 {
                    prim::vect_mult_add(&row, t, &mut acc, 0, 0, m);
                }
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    );
    Value::Matrix(Matrix::dense(DenseMatrix::new(m, 1, acc)))
}

// ---------------------------------------------------------------------------
// `wcemm`: `sum(X ⊙ log(U V^T + eps))` over the non-zeros of sparse X.
// ---------------------------------------------------------------------------

fn match_wcemm(dag: &HopDag, hop: HopId) -> Option<HcOperator> {
    let OpKind::Agg { op: AggOp::Sum, dir: AggDir::Full } = kind(dag, hop) else {
        return None;
    };
    let prod = dag.hop(hop).inputs[0];
    let OpKind::Binary { op: BinaryOp::Mult } = kind(dag, prod) else { return None };
    let [x, lg] = dag.hop(prod).inputs[..] else { return None };
    let OpKind::Unary { op: UnaryOp::Log } = kind(dag, lg) else { return None };
    let plus = dag.hop(lg).inputs[0];
    let OpKind::Binary { op: BinaryOp::Add } = kind(dag, plus) else { return None };
    let [uvt, eps] = dag.hop(plus).inputs[..] else { return None };
    if !dag.hop(eps).is_scalar() || *kind(dag, uvt) != OpKind::MatMult {
        return None;
    }
    let [u, vt] = dag.hop(uvt).inputs[..] else { return None };
    let OpKind::Transpose = kind(dag, vt) else { return None };
    let v = dag.hop(vt).inputs[0];
    Some(HcOperator { root: hop, inputs: vec![x, u, v, eps], kind: HcKind::Wcemm })
}

fn exec_wcemm(inputs: &[Value]) -> Value {
    let xm = inputs[0].as_matrix();
    let um = inputs[1].as_matrix().to_dense();
    let vm = inputs[2].as_matrix().to_dense();
    let epsv = inputs[3].as_scalar();
    let r = um.cols();
    let xs = xm.to_sparse();
    let acc = par::par_map_reduce(
        xs.rows(),
        (xs.nnz() / xs.rows().max(1)).max(1) * r,
        0.0f64,
        |lo, hi| {
            let mut acc = 0.0;
            for i in lo..hi {
                for (j, a) in xs.row_iter(i) {
                    let uv = prim::dot_product(um.row(i), vm.row(j), 0, 0, r);
                    acc += a * (uv + epsv).ln();
                }
            }
            acc
        },
        |a, b| a + b,
    );
    Value::Scalar(acc)
}

// ---------------------------------------------------------------------------
// `wdivmm`-style: `((X != 0) ⊙ (U V^T)) %*% V` (right) or
// `t((X != 0) ⊙ (U V^T)) %*% U` (left).
// ---------------------------------------------------------------------------

fn match_wdivmm(dag: &HopDag, hop: HopId) -> Option<HcOperator> {
    if *kind(dag, hop) != OpKind::MatMult {
        return None;
    }
    let [l, s] = dag.hop(hop).inputs[..] else { return None };
    // Right form: l = masked plane, s = V. Left form: l = t(masked plane).
    let (plane, left) = match kind(dag, l) {
        OpKind::Transpose => (dag.hop(l).inputs[0], true),
        _ => (l, false),
    };
    let OpKind::Binary { op: BinaryOp::Mult } = kind(dag, plane) else { return None };
    let [mask, uvt] = dag.hop(plane).inputs[..] else { return None };
    let OpKind::Binary { op: BinaryOp::Neq } = kind(dag, mask) else { return None };
    let x = dag.hop(mask).inputs[0];
    if *kind(dag, uvt) != OpKind::MatMult {
        return None;
    }
    let [u, vt] = dag.hop(uvt).inputs[..] else { return None };
    let OpKind::Transpose = kind(dag, vt) else { return None };
    let v = dag.hop(vt).inputs[0];
    Some(HcOperator { root: hop, inputs: vec![x, u, v, s], kind: HcKind::Wdivmm { left } })
}

fn exec_wdivmm(inputs: &[Value], left: bool) -> Value {
    let xm = inputs[0].as_matrix().to_sparse();
    let um = inputs[1].as_matrix().to_dense();
    let vm = inputs[2].as_matrix().to_dense();
    let sm = inputs[3].as_matrix().to_dense();
    let r = um.cols();
    let k = sm.cols();
    let (n, m) = (xm.rows(), xm.cols());
    if left {
        // out (m×k): out[j,:] += w_ij * S[i,:]
        let acc = par::par_map_reduce(
            n,
            (xm.nnz() / n.max(1)).max(1) * r,
            pool::take_zeroed(m * k),
            |lo, hi| {
                let mut acc = pool::take_zeroed(m * k);
                for i in lo..hi {
                    for (j, _a) in xm.row_iter(i) {
                        let w = prim::dot_product(um.row(i), vm.row(j), 0, 0, r);
                        prim::vect_mult_add(sm.row(i), w, &mut acc[j * k..(j + 1) * k], 0, 0, k);
                    }
                }
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x += y;
                }
                pool::give(b);
                a
            },
        );
        Value::Matrix(Matrix::dense(DenseMatrix::new(m, k, acc)))
    } else {
        let mut out = pool::take_zeroed(n * k);
        par::par_rows_mut(&mut out, n, k, (xm.nnz() / n.max(1)).max(1) * r, |i, orow| {
            for (j, _a) in xm.row_iter(i) {
                let w = prim::dot_product(um.row(i), vm.row(j), 0, 0, r);
                prim::vect_mult_add(sm.row(j), w, orow, 0, 0, k);
            }
        });
        Value::Matrix(Matrix::dense(DenseMatrix::new(n, k, out)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_hop::DagBuilder;
    use fusedml_linalg::generate;

    fn bind(pairs: &[(&str, Matrix)]) -> Bindings {
        pairs.iter().map(|(n, m)| (n.to_string(), m.clone())).collect()
    }

    fn run_both(dag: &HopDag, bindings: &Bindings) -> (Vec<Value>, Vec<Value>, usize) {
        let stats = ExecStats::default();
        let fused = interpret(dag, bindings, &stats);
        let base = interp::interpret(dag, bindings);
        let (_, hc, _) = stats.snapshot();
        (fused, base, hc)
    }

    #[test]
    fn tak_matches_base_and_matches_pattern() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 80, 1.0);
        let y = b.read("Y", 100, 80, 1.0);
        let z = b.read("Z", 100, 80, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(100, 80, -1.0, 1.0, 1)),
            ("Y", generate::rand_dense(100, 80, -1.0, 1.0, 2)),
            ("Z", generate::rand_dense(100, 80, -1.0, 1.0, 3)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "tak+* must match");
        assert!(fusedml_linalg::approx_eq(fused[0].as_scalar(), base[0].as_scalar(), 1e-9));
    }

    #[test]
    fn mmchain_matches_base() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 500, 60, 1.0);
        let v = b.read("v", 60, 1, 1.0);
        let xv = b.mm(x, v);
        let xt = b.t(x);
        let out = b.mm(xt, xv);
        let dag = b.build(vec![out]);
        let bindings = bind(&[
            ("X", generate::rand_dense(500, 60, -1.0, 1.0, 4)),
            ("v", generate::rand_dense(60, 1, -1.0, 1.0, 5)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "mmchain must match");
        assert!(fused[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
    }

    #[test]
    fn mmchain_does_not_match_matrix_rhs() {
        // X^T (X V) with matrix V is NOT covered by the hand-coded operator
        // (paper §5.2: "the hand-coded mmchain operator only applies to
        // matrix-vector chains").
        let mut b = DagBuilder::new();
        let x = b.read("X", 200, 50, 1.0);
        let v = b.read("V", 50, 2, 1.0);
        let xv = b.mm(x, v);
        let xt = b.t(x);
        let out = b.mm(xt, xv);
        let dag = b.build(vec![out]);
        let bindings = bind(&[
            ("X", generate::rand_dense(200, 50, -1.0, 1.0, 6)),
            ("V", generate::rand_dense(50, 2, -1.0, 1.0, 7)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert_eq!(hc, 0, "no hand-coded operator applies");
        assert!(fused[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
    }

    #[test]
    fn wcemm_matches_base() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 300, 250, 0.02);
        let u = b.read("U", 300, 10, 1.0);
        let v = b.read("V", 250, 10, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let eps = b.lit(1e-15);
        let plus = b.add(uvt, eps);
        let lg = b.log(plus);
        let prod = b.mult(x, lg);
        let s = b.sum(prod);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_matrix(300, 250, 1.0, 5.0, 0.02, 8)),
            ("U", generate::rand_dense(300, 10, 0.1, 1.0, 9)),
            ("V", generate::rand_dense(250, 10, 0.1, 1.0, 10)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "wcemm must match");
        assert!(fusedml_linalg::approx_eq(fused[0].as_scalar(), base[0].as_scalar(), 1e-9));
    }

    #[test]
    fn wdivmm_right_matches_base() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 200, 150, 0.05);
        let u = b.read("U", 200, 8, 1.0);
        let v = b.read("V", 150, 8, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let zero = b.lit(0.0);
        let mask = b.neq(x, zero);
        let w = b.mult(mask, uvt);
        let out = b.mm(w, v);
        let dag = b.build(vec![out]);
        let bindings = bind(&[
            ("X", generate::rand_matrix(200, 150, 1.0, 5.0, 0.05, 11)),
            ("U", generate::rand_dense(200, 8, 0.1, 1.0, 12)),
            ("V", generate::rand_dense(150, 8, 0.1, 1.0, 13)),
        ]);
        let (fused, base, hc) = run_both(&dag, &bindings);
        assert!(hc >= 1, "wdivmm must match");
        assert!(fused[0].as_matrix().approx_eq(&base[0].as_matrix(), 1e-9));
    }

    /// The demand-driven interpreter must not evaluate interior hops of a
    /// matched pattern (the seed implementation materialized them anyway).
    #[test]
    fn pattern_interiors_are_not_materialized() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 80, 1.0);
        let y = b.read("Y", 100, 80, 1.0);
        let m1 = b.mult(x, y);
        let s = b.sum(m1);
        let dag = b.build(vec![s]);
        let bindings = bind(&[
            ("X", generate::rand_dense(100, 80, -1.0, 1.0, 14)),
            ("Y", generate::rand_dense(100, 80, -1.0, 1.0, 15)),
        ]);
        let stats = ExecStats::default();
        let _ = interpret(&dag, &bindings, &stats);
        let (_, hc, basic) = stats.snapshot();
        assert_eq!(hc, 1);
        assert_eq!(basic, 0, "the ⊙ interior must not run as a basic op");
    }
}
