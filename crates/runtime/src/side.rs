//! Side-input access for fused operators: the runtime realization of the
//! paper's `getValue(b[i], …)` abstraction, hiding dense/sparse formats
//! behind a uniform interface (paper §5.2: "Gen handles such cases more
//! efficiently via stateful iterators under the covers of the stateless
//! getValue() abstraction").

use fusedml_core::spoof::SideAccess;
use fusedml_linalg::{DenseMatrix, Matrix, SparseMatrix};

/// A bound side input. Dense sides expose direct indexing; sparse sides use
/// per-row binary search with a cursor cache for sequential scans.
pub enum SideInput {
    Dense(std::sync::Arc<DenseMatrix>),
    Sparse(std::sync::Arc<SparseMatrix>),
}

impl SideInput {
    /// Binds a matrix value.
    pub fn bind(m: &Matrix) -> Self {
        match m {
            Matrix::Dense(d) => SideInput::Dense(d.clone()),
            Matrix::Sparse(s) => SideInput::Sparse(s.clone()),
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        match self {
            SideInput::Dense(d) => d.rows(),
            SideInput::Sparse(s) => s.rows(),
        }
    }

    #[inline]
    pub fn cols(&self) -> usize {
        match self {
            SideInput::Dense(d) => d.cols(),
            SideInput::Sparse(s) => s.cols(),
        }
    }

    /// Point access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            SideInput::Dense(d) => d.get(r, c),
            SideInput::Sparse(s) => s.get(r, c),
        }
    }

    /// `getValue` under a [`SideAccess`] pattern at position (rix, cix).
    #[inline]
    pub fn value_at(&self, access: SideAccess, rix: usize, cix: usize) -> f64 {
        match access {
            SideAccess::Cell => self.get(rix, cix),
            SideAccess::Col => self.get(rix, 0),
            SideAccess::Row => self.get(0, cix),
            SideAccess::Scalar => self.get(0, 0),
        }
    }

    /// Copies row `rix` columns `cl..cu` into `buf` (densifying sparse
    /// rows); rows broadcast when the side has a single row.
    pub fn read_row_into(&self, rix: usize, cl: usize, cu: usize, buf: &mut [f64]) {
        let r = if self.rows() == 1 { 0 } else { rix };
        debug_assert_eq!(buf.len(), cu - cl);
        match self {
            SideInput::Dense(d) => buf.copy_from_slice(&d.row(r)[cl..cu]),
            SideInput::Sparse(s) => {
                buf.fill(0.0);
                for (c, v) in s.row_iter(r) {
                    if c >= cl && c < cu {
                        buf[c - cl] = v;
                    }
                }
            }
        }
    }

    /// Reads the whole side as a flat vector (for n×1 / 1×n sides).
    pub fn read_vector_into(&self, buf: &mut [f64]) {
        match self {
            SideInput::Dense(d) => buf.copy_from_slice(d.values()),
            SideInput::Sparse(s) => {
                buf.fill(0.0);
                if s.cols() == 1 {
                    for (r, slot) in buf.iter_mut().enumerate().take(s.rows()) {
                        for (_, v) in s.row_iter(r) {
                            *slot = v;
                        }
                    }
                } else {
                    for (c, v) in s.row_iter(0) {
                        buf[c] = v;
                    }
                }
            }
        }
    }

    /// Zero-copy borrow of a dense side's row `rix`, sliced to `cl..cu`
    /// (rows broadcast when the side has a single row). `None` for sparse
    /// sides — callers iterate their CSR rows instead of densifying.
    #[inline]
    pub fn dense_row(&self, rix: usize, cl: usize, cu: usize) -> Option<&[f64]> {
        match self {
            SideInput::Dense(d) => {
                let r = if d.rows() == 1 { 0 } else { rix };
                Some(&d.row(r)[cl..cu])
            }
            SideInput::Sparse(_) => None,
        }
    }

    /// Zero-copy borrow of a dense side's full row-major values — for n×1 /
    /// 1×n sides this is exactly the vector. `None` for sparse sides.
    #[inline]
    pub fn dense_values(&self) -> Option<&[f64]> {
        match self {
            SideInput::Dense(d) => Some(d.values()),
            SideInput::Sparse(_) => None,
        }
    }

    /// Dense row-major values (densifying once if sparse) — used for
    /// `vectMatMult` side matrices where repeated row access dominates.
    pub fn to_dense_values(&self) -> std::borrow::Cow<'_, [f64]> {
        match self {
            SideInput::Dense(d) => std::borrow::Cow::Borrowed(d.values()),
            SideInput::Sparse(s) => std::borrow::Cow::Owned(s.to_dense().into_values()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_linalg::SparseMatrix;

    #[test]
    fn value_access_patterns() {
        let d = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let s = SideInput::bind(&Matrix::dense(d));
        assert_eq!(s.value_at(SideAccess::Cell, 1, 0), 3.0);
        assert_eq!(s.value_at(SideAccess::Col, 1, 99), 3.0);
        assert_eq!(s.value_at(SideAccess::Row, 99, 1), 2.0);
        assert_eq!(s.value_at(SideAccess::Scalar, 9, 9), 1.0);
    }

    #[test]
    fn sparse_row_read_densifies() {
        let sp = SparseMatrix::from_triples(2, 4, vec![(0, 1, 5.0), (0, 3, 7.0)]);
        let s = SideInput::bind(&Matrix::sparse(sp));
        let mut buf = vec![0.0; 3];
        s.read_row_into(0, 1, 4, &mut buf);
        assert_eq!(buf, vec![5.0, 0.0, 7.0]);
    }

    #[test]
    fn single_row_broadcast() {
        let d = DenseMatrix::row_vector(&[1.0, 2.0, 3.0]);
        let s = SideInput::bind(&Matrix::dense(d));
        let mut buf = vec![0.0; 3];
        s.read_row_into(57, 0, 3, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dense_row_borrows_and_broadcasts() {
        let d = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = SideInput::bind(&Matrix::dense(d));
        assert_eq!(s.dense_row(1, 0, 3).unwrap(), &[4.0, 5.0, 6.0]);
        assert_eq!(s.dense_row(1, 1, 3).unwrap(), &[5.0, 6.0]);
        let row = DenseMatrix::row_vector(&[7.0, 8.0]);
        let b = SideInput::bind(&Matrix::dense(row));
        assert_eq!(b.dense_row(42, 0, 2).unwrap(), &[7.0, 8.0], "single row broadcasts");
        let sp = SparseMatrix::from_triples(2, 3, vec![(0, 1, 5.0)]);
        assert!(SideInput::bind(&Matrix::sparse(sp)).dense_row(0, 0, 3).is_none());
    }

    #[test]
    fn dense_values_borrows_whole_vector() {
        let col = DenseMatrix::new(3, 1, vec![1.0, 2.0, 3.0]);
        let s = SideInput::bind(&Matrix::dense(col));
        assert_eq!(s.dense_values().unwrap(), &[1.0, 2.0, 3.0]);
        let sp = SparseMatrix::from_triples(3, 1, vec![(1, 0, 9.0)]);
        assert!(SideInput::bind(&Matrix::sparse(sp)).dense_values().is_none());
    }

    #[test]
    fn vector_reads() {
        let col = SparseMatrix::from_triples(4, 1, vec![(2, 0, 9.0)]);
        let s = SideInput::bind(&Matrix::sparse(col));
        let mut buf = vec![0.0; 4];
        s.read_vector_into(&mut buf);
        assert_eq!(buf, vec![0.0, 0.0, 9.0, 0.0]);
    }
}
