//! Static plan verification: an IR-invariant checker over every layer a
//! compiled script carries (DESIGN.md substitution X9).
//!
//! The codegen pipeline silently assumes a stack of invariants — template
//! legality (paper §4 fusion conditions), shape agreement between the HOP
//! facts and the bound geometry, register def-before-use in generated
//! programs, task-graph refcounts that exactly mirror liveness — and a
//! violation of any of them surfaces as a miscompile, a leak, or a scheduler
//! hang rather than an error. [`verify_compiled`] turns each assumption into
//! a machine-checked, typed [`VerifyError`]:
//!
//! 1. **Hop layer** ([`check_hops`]): DAG well-formedness (arity, topological
//!    input order, root validity), shape-inference consistency (every stored
//!    size re-derived through [`fusedml_hop::size::try_infer`]), and a full
//!    re-audit of the cached liveness facts via
//!    [`fusedml_hop::liveness::check`].
//! 2. **Fusion-plan layer** ([`check_plan`]): the plan still matches the DAG
//!    it will execute against, no hop is written by two fused operators, and
//!    every operator's CPlan is legal for its template — side-access
//!    geometry, node acyclicity, output arity/shape per paper Table 1.
//! 3. **Register-program layer** (`check_program` / [`check_row_kernel`]):
//!    def-before-use over scalar and vector registers, vector-width
//!    agreement, vector instructions confined to the Row template, hoisted
//!    Row invariants provably loop-invariant, and `sparse_safe` /
//!    `sparse_main_ok` claims re-derived (structurally and by a numeric
//!    zero-probe of the compiled program).
//! 4. **Task-graph layer** ([`check_task_graph`]): read-occurrence refcounts
//!    recomputed from the task dependencies (and cross-checked against the
//!    liveness consumer counts in `Base` mode), per-task output-byte
//!    estimates consistent with the size estimator, and spill-eligibility
//!    flags sound (no leaf eligible, no sub-threshold value eligible).
//! 5. **Residency state machine** ([`check_residency_trace`]): an explicit
//!    transition table for the scheduler's slot lifecycle
//!    (`Empty/Resident/Streamed/Spilled/Loading/Evicting`). Debug builds
//!    record every slot transition under the scheduler lock and replay the
//!    trace against the table after each run — a lightweight lifecycle
//!    detector for the out-of-core machinery.
//!
//! Verification runs inside `Engine::compile` behind
//! `EngineBuilder::verify_plans` (default on in debug builds, off in release
//! unless requested), on the compile-once path only — executing a compiled
//! script never re-verifies.

use crate::schedule::{TaskGraph, TaskKind};
use fusedml_core::cplan::{CNode, CPlan, CellAggKind, NodeId, OutputSpec, RowOutKind};
use fusedml_core::optimizer::{FusedOperator, FusionPlan};
use fusedml_core::spoof::block::{
    compile_kernel, compile_row_kernel, whole_vector_load, RowKernel,
};
use fusedml_core::spoof::mono;
use fusedml_core::spoof::{eval_scalar_program, FusedSpec, Instr, Program, RowOut, SideAccess};
use fusedml_core::templates::TemplateType;
use fusedml_hop::liveness::{self, Liveness};
use fusedml_hop::{size, HopDag};
use fusedml_linalg::spill::MIN_SPILL_BYTES;
use std::cell::Cell;
use std::fmt;

/// A violated compile-time invariant, by layer and class. Each variant names
/// enough identity (hop / operator / instruction / task / slot) to locate the
/// violation without parsing the message.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The HOP DAG itself is malformed: arity mismatch, non-topological
    /// input, out-of-range id, or a shape that no longer re-infers.
    MalformedDag { hop: u32, detail: String },
    /// A stored hop size disagrees with re-inference from its input sizes.
    ShapeDrift { hop: u32, stored: (usize, usize), inferred: (usize, usize) },
    /// The cached liveness facts disagree with a fresh analysis.
    StaleLiveness { detail: String },
    /// Plan-level geometry disagrees with the DAG variant it is bound to
    /// (structural hash, side dims, iteration or output dims).
    PlanGeometryMismatch { detail: String },
    /// Two fused operators both claim to write the same hop.
    OverlappingFusedWrite { hop: u32, first_op: usize, second_op: usize },
    /// A CPlan or spec violates its template's legality conditions
    /// (paper §4: side-access geometry, node ordering, output arity).
    IllegalTemplate { op_ix: usize, detail: String },
    /// A register-program instruction reads a register no earlier
    /// instruction defined, or references an out-of-range register, side, or
    /// scalar input.
    DanglingRegister { op_ix: usize, instr: usize, detail: String },
    /// Vector-register widths disagree across an instruction.
    RegisterWidthMismatch { op_ix: usize, instr: usize, detail: String },
    /// A Row-kernel instruction hoisted to the invariant section is not
    /// provably loop-invariant.
    NotLoopInvariant { op_ix: usize, instr: usize, detail: String },
    /// A `sparse_safe` / `sparse_main_ok` claim the verifier cannot
    /// re-derive (structurally or by numeric zero-probe).
    SparseClaim { op_ix: usize, detail: String },
    /// A task-graph read-occurrence refcount disagrees with the recomputed
    /// count (or, in `Base` mode, with the liveness consumer counts).
    RefcountMismatch { hop: u32, expected: u32, stored: u32 },
    /// A task's output-byte estimate disagrees with the size estimator.
    TaskBytesMismatch { task: usize, expected: usize, stored: usize },
    /// A compiled block kernel's monomorphized shape classification does not
    /// survive re-derivation from the register program, or violates the
    /// backend's dispatch invariants (a fast kernel and a mono kernel on the
    /// same result register, or a non-specialized mono class).
    MonoShapeMismatch { op_ix: usize, detail: String },
    /// A spill-eligibility flag is unsound: a leaf or sub-threshold value
    /// marked eligible, or an eligible intermediate marked not.
    SpillEligibility { hop: u32, detail: String },
    /// The task graph is structurally inconsistent (field lengths, producer
    /// counts, levels, or an operator index with no plan behind it).
    TaskGraphMalformed { detail: String },
    /// A task's shard plan is unsound: a non-fused task carries one, the
    /// partitioning is illegal for the operator (no main, too few rows, a
    /// partitioned side that does not row-align), or the merge plan
    /// disagrees with the template's aggregation semantics. Checked by
    /// re-deriving the spec from the operator and comparing.
    ShardPlan { task: usize, detail: String },
    /// A recorded slot transition the residency state machine forbids (or a
    /// trace that ends with a non-empty slot).
    ResidencyViolation { slot: usize, from: SlotState, to: SlotState, step: usize },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MalformedDag { hop, detail } => {
                write!(f, "malformed DAG at hop {hop}: {detail}")
            }
            VerifyError::ShapeDrift { hop, stored, inferred } => write!(
                f,
                "hop {hop} stores size {}x{} but re-inference gives {}x{}",
                stored.0, stored.1, inferred.0, inferred.1
            ),
            VerifyError::StaleLiveness { detail } => {
                write!(f, "stale liveness facts: {detail}")
            }
            VerifyError::PlanGeometryMismatch { detail } => {
                write!(f, "plan geometry mismatch: {detail}")
            }
            VerifyError::OverlappingFusedWrite { hop, first_op, second_op } => write!(
                f,
                "hop {hop} is written by fused operators #{first_op} and #{second_op}"
            ),
            VerifyError::IllegalTemplate { op_ix, detail } => {
                write!(f, "operator #{op_ix} violates template legality: {detail}")
            }
            VerifyError::DanglingRegister { op_ix, instr, detail } => {
                write!(f, "operator #{op_ix} instr {instr}: dangling register: {detail}")
            }
            VerifyError::RegisterWidthMismatch { op_ix, instr, detail } => {
                write!(f, "operator #{op_ix} instr {instr}: register width mismatch: {detail}")
            }
            VerifyError::NotLoopInvariant { op_ix, instr, detail } => {
                write!(f, "operator #{op_ix} invariant instr {instr} is not loop-invariant: {detail}")
            }
            VerifyError::SparseClaim { op_ix, detail } => {
                write!(f, "operator #{op_ix} over-claims sparse safety: {detail}")
            }
            VerifyError::RefcountMismatch { hop, expected, stored } => write!(
                f,
                "hop {hop} read-refcount is {stored} but recomputation gives {expected}"
            ),
            VerifyError::MonoShapeMismatch { op_ix, detail } => {
                write!(f, "operator #{op_ix}: mono shape audit failed: {detail}")
            }
            VerifyError::TaskBytesMismatch { task, expected, stored } => write!(
                f,
                "task {task} output estimate is {stored} bytes but the size estimator gives {expected}"
            ),
            VerifyError::SpillEligibility { hop, detail } => {
                write!(f, "hop {hop} spill eligibility is unsound: {detail}")
            }
            VerifyError::TaskGraphMalformed { detail } => {
                write!(f, "malformed task graph: {detail}")
            }
            VerifyError::ShardPlan { task, detail } => {
                write!(f, "unsound shard plan on task {task}: {detail}")
            }
            VerifyError::ResidencyViolation { slot, from, to, step } => write!(
                f,
                "slot {slot}: illegal residency transition {from:?} -> {to:?} at trace step {step}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a compiled artifact across all static layers: hop DAG, fusion
/// plan (when present), and task graph. This is the entry point
/// `Engine::compile` calls under `verify_plans`.
pub fn verify_compiled(
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    graph: &TaskGraph,
    facts: &Liveness,
) -> Result<(), VerifyError> {
    check_hops(dag, facts)?;
    if let Some(p) = plan {
        check_plan(dag, p)?;
    }
    check_task_graph(dag, plan, graph, facts)?;
    check_shard_plan(plan, graph)
}

/// Shard-plan soundness: every task carrying a [`crate::shard::ShardSpec`]
/// must be a fused task whose spec is exactly what
/// [`crate::shard::derive_spec`] re-derives from the operator — which
/// re-checks partitioning legality (a present main, `iter_rows >= shards`,
/// partitioned sides row-aligned with the iteration space, no cross-shard
/// main reads by construction) and merge-op/agg-kind agreement (e.g. `Min`
/// partials merged with `Min`, `Mean` never merged element-wise).
pub fn check_shard_plan(plan: Option<&FusionPlan>, graph: &TaskGraph) -> Result<(), VerifyError> {
    let specs = graph.shard_specs();
    if specs.len() != graph.tasks.len() {
        return Err(VerifyError::TaskGraphMalformed {
            detail: format!("shard has {} entries for {} tasks", specs.len(), graph.tasks.len()),
        });
    }
    for (t, spec) in specs.iter().enumerate() {
        let Some(spec) = spec else { continue };
        let err = |detail: String| VerifyError::ShardPlan { task: t, detail };
        let TaskKind::Fused { op_ix } = graph.tasks[t].kind else {
            return Err(err("non-fused task carries a shard spec".into()));
        };
        let Some(f) = plan.and_then(|p| p.operators.get(op_ix)) else {
            return Err(err(format!("fused operator #{op_ix} has no plan behind it")));
        };
        if spec.shards < 2 {
            return Err(err(format!("{}-shard plan (sharding needs >= 2)", spec.shards)));
        }
        match crate::shard::derive_spec(&f.op.spec, &f.cplan, spec.shards) {
            Some(ref derived) if derived == spec => {}
            Some(derived) => {
                return Err(err(format!(
                    "stored spec {spec:?} disagrees with re-derivation {derived:?}"
                )))
            }
            None => {
                return Err(err(format!(
                    "operator #{op_ix} is not legally shardable at {} shards",
                    spec.shards
                )))
            }
        }
    }
    Ok(())
}

// ===========================================================================
// Layer 1: hop DAG
// ===========================================================================

/// DAG well-formedness + shape re-inference + liveness re-audit.
pub fn check_hops(dag: &HopDag, facts: &Liveness) -> Result<(), VerifyError> {
    let live = dag.live_set();
    for (i, h) in dag.iter().enumerate() {
        if h.id.index() != i {
            return Err(VerifyError::MalformedDag {
                hop: i as u32,
                detail: format!("arena id {} disagrees with position {i}", h.id),
            });
        }
        if h.inputs.len() != h.kind.arity() {
            return Err(VerifyError::MalformedDag {
                hop: h.id.0,
                detail: format!(
                    "{:?} expects {} inputs, has {}",
                    h.kind,
                    h.kind.arity(),
                    h.inputs.len()
                ),
            });
        }
        for &inp in &h.inputs {
            if inp.index() >= i {
                return Err(VerifyError::MalformedDag {
                    hop: h.id.0,
                    detail: format!("input {inp} does not precede its consumer (non-topological)"),
                });
            }
        }
        // Shape re-inference for live interior hops. Dead hops legitimately
        // keep stale sizes (`with_read_geometry` skips them), and leaf sizes
        // are external facts with nothing to re-derive from.
        if live[i] && !h.kind.is_leaf() {
            let ins: Vec<size::SizeInfo> = h.inputs.iter().map(|&inp| dag.hop(inp).size).collect();
            match size::try_infer(&h.kind, &ins) {
                Ok(s) => {
                    if (s.rows, s.cols) != (h.size.rows, h.size.cols) {
                        return Err(VerifyError::ShapeDrift {
                            hop: h.id.0,
                            stored: (h.size.rows, h.size.cols),
                            inferred: (s.rows, s.cols),
                        });
                    }
                }
                Err(m) => return Err(VerifyError::MalformedDag { hop: h.id.0, detail: m }),
            }
        }
    }
    for &r in dag.roots() {
        if r.index() >= dag.len() {
            return Err(VerifyError::MalformedDag {
                hop: r.0,
                detail: "root id out of range".into(),
            });
        }
    }
    liveness::check(dag, facts).map_err(|e| VerifyError::StaleLiveness { detail: e.to_string() })
}

// ===========================================================================
// Layer 2: fusion plan
// ===========================================================================

/// Plan ↔ DAG binding, fused-write exclusivity, and per-operator legality.
pub fn check_plan(dag: &HopDag, plan: &FusionPlan) -> Result<(), VerifyError> {
    if !plan.matches(dag) {
        return Err(VerifyError::PlanGeometryMismatch {
            detail: "plan structural hash disagrees with the DAG it is bound to".into(),
        });
    }
    let mut owner: Vec<Option<usize>> = vec![None; dag.len()];
    for (op_ix, f) in plan.operators.iter().enumerate() {
        for &r in &f.roots {
            if r.index() >= dag.len() {
                return Err(VerifyError::IllegalTemplate {
                    op_ix,
                    detail: format!("root hop {r} out of range"),
                });
            }
            if let Some(first) = owner[r.index()] {
                return Err(VerifyError::OverlappingFusedWrite {
                    hop: r.0,
                    first_op: first,
                    second_op: op_ix,
                });
            }
            owner[r.index()] = Some(op_ix);
        }
    }
    for (op_ix, f) in plan.operators.iter().enumerate() {
        check_operator(dag, op_ix, f)?;
    }
    Ok(())
}

/// One fused operator: CPlan legality, spec agreement, program soundness.
fn check_operator(dag: &HopDag, op_ix: usize, f: &FusedOperator) -> Result<(), VerifyError> {
    let cp = &f.cplan;
    check_cplan_inputs(dag, op_ix, cp)?;
    check_cplan_nodes(op_ix, cp)?;
    check_output_spec(dag, op_ix, f)?;
    check_spec(op_ix, cp, &f.op.spec)?;
    Ok(())
}

/// CPlan input bindings: main/side/scalar hops exist and their stored
/// geometry agrees with the DAG's size facts.
fn check_cplan_inputs(dag: &HopDag, op_ix: usize, cp: &CPlan) -> Result<(), VerifyError> {
    let in_range = |h: fusedml_hop::HopId| h.index() < dag.len();
    if let Some(m) = cp.main {
        if !in_range(m) {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: format!("main hop {m} out of range"),
            });
        }
        let sz = dag.hop(m).size;
        if (sz.rows, sz.cols) != (cp.iter_rows, cp.iter_cols) {
            return Err(VerifyError::PlanGeometryMismatch {
                detail: format!(
                    "operator #{op_ix} iterates {}x{} but its main hop {m} is {}x{}",
                    cp.iter_rows, cp.iter_cols, sz.rows, sz.cols
                ),
            });
        }
    }
    if cp.sides.len() != cp.side_dims.len() {
        return Err(VerifyError::PlanGeometryMismatch {
            detail: format!(
                "operator #{op_ix} has {} side hops but {} side dims",
                cp.sides.len(),
                cp.side_dims.len()
            ),
        });
    }
    for (s, (&h, &(r, c))) in cp.sides.iter().zip(cp.side_dims.iter()).enumerate() {
        if !in_range(h) {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: format!("side {s} hop {h} out of range"),
            });
        }
        let sz = dag.hop(h).size;
        if (sz.rows, sz.cols) != (r, c) {
            return Err(VerifyError::PlanGeometryMismatch {
                detail: format!(
                    "operator #{op_ix} side {s} is bound as {r}x{c} but hop {h} is {}x{}",
                    sz.rows, sz.cols
                ),
            });
        }
    }
    for (s, &h) in cp.scalars.iter().enumerate() {
        if !in_range(h) {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: format!("scalar {s} hop {h} out of range"),
            });
        }
        let sz = dag.hop(h).size;
        if (sz.rows, sz.cols) != (1, 1) {
            return Err(VerifyError::PlanGeometryMismatch {
                detail: format!(
                    "operator #{op_ix} scalar input {s} (hop {h}) is {}x{}, not 1x1",
                    sz.rows, sz.cols
                ),
            });
        }
    }
    for &h in &cp.covered {
        if !in_range(h) {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: format!("covered hop {h} out of range"),
            });
        }
    }
    // Outer's UV binding exists exactly for Outer plans, and the declared
    // rank matches both factors.
    match (cp.ttype, cp.outer_uv) {
        (TemplateType::Outer, None) => {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: "Outer plan without a UV binding".into(),
            })
        }
        (TemplateType::Outer, Some((u, v, rank))) => {
            for (name, s) in [("u", u), ("v", v)] {
                if s >= cp.side_dims.len() {
                    return Err(VerifyError::IllegalTemplate {
                        op_ix,
                        detail: format!("outer {name}-side index {s} out of range"),
                    });
                }
            }
            if cp.side_dims[u].1 != rank || cp.side_dims[v].1 != rank {
                return Err(VerifyError::PlanGeometryMismatch {
                    detail: format!(
                        "operator #{op_ix} declares rank {rank} but U is {}-wide and V is {}-wide",
                        cp.side_dims[u].1, cp.side_dims[v].1
                    ),
                });
            }
        }
        (_, Some(_)) => {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: format!("{:?} plan carries an Outer UV binding", cp.ttype),
            })
        }
        (_, None) => {}
    }
    Ok(())
}

/// CPlan node graph: operand ordering (acyclicity), side/scalar index
/// bounds, and per-template side-access geometry (paper §4).
fn check_cplan_nodes(op_ix: usize, cp: &CPlan) -> Result<(), VerifyError> {
    let is_row = cp.ttype == TemplateType::Row;
    let is_outer = cp.ttype == TemplateType::Outer;
    let ill = |detail: String| VerifyError::IllegalTemplate { op_ix, detail };
    let operand = |i: usize, n: NodeId| -> Result<(), VerifyError> {
        if (n as usize) >= i {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: format!("cplan node {i} references node {n} at or after itself"),
            });
        }
        Ok(())
    };
    let side_ok = |s: usize| -> Result<(usize, usize), VerifyError> {
        cp.side_dims.get(s).copied().ok_or_else(|| VerifyError::IllegalTemplate {
            op_ix,
            detail: format!("side index {s} out of range"),
        })
    };
    for (i, node) in cp.nodes.iter().enumerate() {
        match *node {
            CNode::Main => {}
            CNode::UVDot if !is_outer => {
                return Err(ill(format!("UVDot node in a {:?} plan", cp.ttype)))
            }
            CNode::UVDot => {}
            CNode::MainRow | CNode::SideRow { .. } | CNode::SideVector { .. } if !is_row => {
                return Err(ill(format!("row-vector node in a {:?} plan", cp.ttype)))
            }
            CNode::MainRow => {}
            CNode::Side { side, access } => {
                let (r, c) = side_ok(side)?;
                let want = match access {
                    SideAccess::Cell => (cp.iter_rows, cp.iter_cols),
                    SideAccess::Col => (cp.iter_rows, 1),
                    SideAccess::Row => (1, cp.iter_cols),
                    SideAccess::Scalar => (1, 1),
                };
                if (r, c) != want {
                    return Err(ill(format!(
                        "side {side} accessed as {access:?} must be {}x{}, is {r}x{c}",
                        want.0, want.1
                    )));
                }
            }
            CNode::SideRow { side, cl, cu } => {
                let (r, c) = side_ok(side)?;
                let whole = whole_vector_load(r, c, cl, cu);
                let aligned = (r == cp.iter_rows || r == 1) && cl < cu && cu <= c;
                if !whole && !aligned {
                    return Err(ill(format!(
                        "side-row slice {cl}..{cu} of a {r}x{c} side under {}-row iteration",
                        cp.iter_rows
                    )));
                }
            }
            CNode::SideVector { side } => {
                let (r, c) = side_ok(side)?;
                if r != 1 && c != 1 {
                    return Err(ill(format!("side {side} used as a vector but is {r}x{c}")));
                }
            }
            CNode::ScalarInput { idx } => {
                if idx >= cp.scalars.len() {
                    return Err(ill(format!("scalar input index {idx} out of range")));
                }
            }
            CNode::Const { .. } => {}
            CNode::Unary { a, .. } => operand(i, a)?,
            CNode::Binary { a, b, .. } => {
                operand(i, a)?;
                operand(i, b)?;
            }
            CNode::Ternary { a, b, c, .. } => {
                operand(i, a)?;
                operand(i, b)?;
                operand(i, c)?;
            }
            CNode::VectMatMult { a, side } => {
                if !is_row {
                    return Err(ill(format!("VectMatMult node in a {:?} plan", cp.ttype)));
                }
                operand(i, a)?;
                side_ok(side)?;
            }
            CNode::Dot { a, b } => {
                if !is_row {
                    return Err(ill(format!("Dot node in a {:?} plan", cp.ttype)));
                }
                operand(i, a)?;
                operand(i, b)?;
            }
            CNode::VecAgg { a, .. } => {
                if !is_row {
                    return Err(ill(format!("VecAgg node in a {:?} plan", cp.ttype)));
                }
                operand(i, a)?;
            }
        }
    }
    Ok(())
}

/// Output spec ↔ template agreement, root arity, and output geometry
/// (paper Table 1 variants).
fn check_output_spec(dag: &HopDag, op_ix: usize, f: &FusedOperator) -> Result<(), VerifyError> {
    let cp = &f.cplan;
    let ill = |detail: String| VerifyError::IllegalTemplate { op_ix, detail };
    let n = cp.nodes.len();
    let node = |nid: NodeId| -> Result<(), VerifyError> {
        if (nid as usize) >= n {
            return Err(VerifyError::IllegalTemplate {
                op_ix,
                detail: format!("output references cplan node {nid}, have {n}"),
            });
        }
        Ok(())
    };
    let spec_matches = matches!(
        (&cp.output, cp.ttype),
        (OutputSpec::Cell { .. }, TemplateType::Cell)
            | (OutputSpec::MAgg { .. }, TemplateType::MAgg)
            | (OutputSpec::Row { .. }, TemplateType::Row)
            | (OutputSpec::Outer { .. }, TemplateType::Outer)
    );
    if !spec_matches {
        return Err(ill(format!("{:?} template with a mismatched output spec", cp.ttype)));
    }
    if f.roots.is_empty() {
        return Err(ill("operator with no root hops".into()));
    }
    for &r in &f.roots {
        if !cp.covered.contains(&r) {
            return Err(ill(format!("root hop {r} is not covered by the plan")));
        }
    }
    // Expected output geometry per template variant. `None` means the
    // verifier cannot derive it statically at this layer (Row vector widths
    // live in the register program, checked by `check_spec`).
    let expect: Option<(usize, usize)> = match &cp.output {
        OutputSpec::Cell { result, agg } => {
            node(*result)?;
            Some(match agg {
                CellAggKind::NoAgg => (cp.iter_rows, cp.iter_cols),
                CellAggKind::RowAgg(_) => (cp.iter_rows, 1),
                CellAggKind::ColAgg(_) => (1, cp.iter_cols),
                CellAggKind::FullAgg(_) => (1, 1),
            })
        }
        OutputSpec::MAgg { results } => {
            if results.is_empty() {
                return Err(ill("MAgg with no aggregates".into()));
            }
            if results.len() != f.roots.len() {
                return Err(ill(format!(
                    "MAgg computes {} aggregates for {} roots",
                    results.len(),
                    f.roots.len()
                )));
            }
            for &(nid, _) in results {
                node(nid)?;
            }
            // Each MAgg root is one 1×1 aggregate.
            for &r in &f.roots {
                let sz = dag.hop(r).size;
                if (sz.rows, sz.cols) != (1, 1) {
                    return Err(VerifyError::PlanGeometryMismatch {
                        detail: format!(
                            "operator #{op_ix} MAgg root {r} is {}x{}, not 1x1",
                            sz.rows, sz.cols
                        ),
                    });
                }
            }
            Some((1, results.len()))
        }
        OutputSpec::Row { out } => {
            match *out {
                RowOutKind::NoAgg { src }
                | RowOutKind::RowAgg { src }
                | RowOutKind::ColAgg { src }
                | RowOutKind::FullAgg { src } => node(src)?,
                RowOutKind::OuterColAgg { left, right } => {
                    node(left)?;
                    node(right)?;
                }
                RowOutKind::ColAggMultAdd { vec, scalar } => {
                    node(vec)?;
                    node(scalar)?;
                }
            }
            match *out {
                RowOutKind::RowAgg { .. } => Some((cp.iter_rows, 1)),
                RowOutKind::FullAgg { .. } => Some((1, 1)),
                _ => None,
            }
        }
        OutputSpec::Outer { result, out } => {
            node(*result)?;
            use fusedml_core::cplan::OuterOutKind as O;
            match *out {
                O::RightMM { side } | O::LeftMM { side } => {
                    if side >= cp.side_dims.len() {
                        return Err(ill(format!("outer MM side index {side} out of range")));
                    }
                    Some(match *out {
                        O::RightMM { side } => (cp.iter_rows, cp.side_dims[side].1),
                        _ => (cp.iter_cols, cp.side_dims[side].1),
                    })
                }
                O::FullAgg => Some((1, 1)),
                O::NoAgg => Some((cp.iter_rows, cp.iter_cols)),
            }
        }
    };
    if let Some((er, ec)) = expect {
        if (cp.out_rows, cp.out_cols) != (er, ec) {
            return Err(VerifyError::PlanGeometryMismatch {
                detail: format!(
                    "operator #{op_ix} output variant implies {er}x{ec}, plan stores {}x{}",
                    cp.out_rows, cp.out_cols
                ),
            });
        }
    }
    // Single-output templates bind exactly one root, and the root hop's size
    // facts are the costed output geometry.
    if !matches!(cp.output, OutputSpec::MAgg { .. }) {
        if f.roots.len() != 1 {
            return Err(ill(format!(
                "{:?} operator with {} roots (expected 1)",
                cp.ttype,
                f.roots.len()
            )));
        }
        let sz = dag.hop(f.roots[0]).size;
        if (sz.rows, sz.cols) != (cp.out_rows, cp.out_cols) {
            return Err(VerifyError::PlanGeometryMismatch {
                detail: format!(
                    "operator #{op_ix} writes {}x{} but its root hop {} is {}x{}",
                    cp.out_rows, cp.out_cols, f.roots[0], sz.rows, sz.cols
                ),
            });
        }
    }
    Ok(())
}

// ===========================================================================
// Layer 3: register programs
// ===========================================================================

/// Register definedness after a [`check_program`] pass, used to validate the
/// spec's result references.
struct Defs {
    scalar: Vec<bool>,
    vector: Vec<bool>,
}

/// Per-template context for program checking.
struct ProgCx<'a> {
    op_ix: usize,
    ttype: TemplateType,
    iter_rows: usize,
    iter_cols: usize,
    side_dims: &'a [(usize, usize)],
    n_scalars: usize,
}

/// Instructions that only the Row template's vectorized kernel may emit
/// (they touch vector registers or consume whole rows).
fn is_vector_instr(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::LoadMainRow { .. }
            | Instr::LoadSideRow { .. }
            | Instr::VecUnary { .. }
            | Instr::VecBinaryVV { .. }
            | Instr::VecBinaryVS { .. }
            | Instr::VecMatMult { .. }
            | Instr::VecCumsum { .. }
            | Instr::Dot { .. }
            | Instr::VecAgg { .. }
    )
}

/// Def-before-use, register/width agreement, and template gating of one
/// register program. Returns the final definedness sets.
fn check_program(cx: &ProgCx<'_>, prog: &Program) -> Result<Defs, VerifyError> {
    let mut sdef = vec![false; prog.n_regs as usize];
    let mut vdef = vec![false; prog.vreg_lens.len()];
    let is_row = cx.ttype == TemplateType::Row;
    let is_outer = cx.ttype == TemplateType::Outer;
    for (i, ins) in prog.instrs.iter().enumerate() {
        let dangle =
            |detail: String| VerifyError::DanglingRegister { op_ix: cx.op_ix, instr: i, detail };
        let width = |detail: String| VerifyError::RegisterWidthMismatch {
            op_ix: cx.op_ix,
            instr: i,
            detail,
        };
        let template = |detail: String| VerifyError::IllegalTemplate {
            op_ix: cx.op_ix,
            detail: format!("instr {i}: {detail}"),
        };
        macro_rules! use_s {
            ($r:expr) => {{
                let r = $r as usize;
                if r >= sdef.len() || !sdef[r] {
                    return Err(dangle(format!("reads undefined scalar register {r}")));
                }
            }};
        }
        macro_rules! use_v {
            ($v:expr) => {{
                let v = $v as usize;
                if v >= vdef.len() || !vdef[v] {
                    return Err(dangle(format!("reads undefined vector register {v}")));
                }
            }};
        }
        macro_rules! def_s {
            ($r:expr) => {{
                let r = $r as usize;
                if r >= sdef.len() {
                    return Err(dangle(format!(
                        "defines scalar register {r}, program has {}",
                        sdef.len()
                    )));
                }
                sdef[r] = true;
            }};
        }
        macro_rules! def_v {
            ($v:expr) => {{
                let v = $v as usize;
                if v >= vdef.len() {
                    return Err(dangle(format!(
                        "defines vector register {v}, program has {}",
                        vdef.len()
                    )));
                }
                vdef[v] = true;
            }};
        }
        let vlen = |v: u16| prog.vreg_lens[v as usize];
        let side = |s: usize| -> Result<(usize, usize), VerifyError> {
            cx.side_dims.get(s).copied().ok_or_else(|| VerifyError::DanglingRegister {
                op_ix: cx.op_ix,
                instr: i,
                detail: format!("side input {s} out of range"),
            })
        };
        if !is_row && is_vector_instr(ins) {
            return Err(template("vector instruction outside the Row template".into()));
        }
        match *ins {
            Instr::LoadMain { out } => def_s!(out),
            Instr::LoadUVDot { out } => {
                if !is_outer {
                    return Err(template("UVDot load outside the Outer template".into()));
                }
                def_s!(out);
            }
            Instr::LoadSide { out, side: s, access } => {
                let (r, c) = side(s)?;
                let want = match access {
                    SideAccess::Cell => (cx.iter_rows, cx.iter_cols),
                    SideAccess::Col => (cx.iter_rows, 1),
                    SideAccess::Row => (1, cx.iter_cols),
                    SideAccess::Scalar => (1, 1),
                };
                if (r, c) != want {
                    return Err(template(format!(
                        "side {s} accessed as {access:?} must be {}x{}, is {r}x{c}",
                        want.0, want.1
                    )));
                }
                def_s!(out);
            }
            Instr::LoadScalar { out, idx } => {
                if idx >= cx.n_scalars {
                    return Err(dangle(format!("scalar input {idx} out of range")));
                }
                def_s!(out);
            }
            Instr::LoadConst { out, .. } => def_s!(out),
            Instr::Unary { out, a, .. } => {
                use_s!(a);
                def_s!(out);
            }
            Instr::Binary { out, a, b, .. } => {
                use_s!(a);
                use_s!(b);
                def_s!(out);
            }
            Instr::Ternary { out, a, b, c, .. } => {
                use_s!(a);
                use_s!(b);
                use_s!(c);
                def_s!(out);
            }
            Instr::LoadMainRow { out } => {
                def_v!(out);
                if vlen(out) != cx.iter_cols {
                    return Err(width(format!(
                        "main row register holds {} lanes for {} iteration columns",
                        vlen(out),
                        cx.iter_cols
                    )));
                }
            }
            Instr::LoadSideRow { out, side: s, cl, cu } => {
                let (r, c) = side(s)?;
                let whole = whole_vector_load(r, c, cl, cu);
                let aligned = (r == cx.iter_rows || r == 1) && cl < cu && cu <= c;
                if !whole && !aligned {
                    return Err(template(format!(
                        "side-row slice {cl}..{cu} of a {r}x{c} side under {}-row iteration",
                        cx.iter_rows
                    )));
                }
                def_v!(out);
                if vlen(out) != cu - cl {
                    return Err(width(format!(
                        "side-row register holds {} lanes for a {}-wide slice",
                        vlen(out),
                        cu - cl
                    )));
                }
            }
            Instr::VecUnary { out, a, .. } | Instr::VecCumsum { out, a } => {
                use_v!(a);
                def_v!(out);
                if vlen(out) != vlen(a) {
                    return Err(width(format!("{} lanes from {}", vlen(out), vlen(a))));
                }
            }
            Instr::VecBinaryVV { out, a, b, .. } => {
                use_v!(a);
                use_v!(b);
                def_v!(out);
                if vlen(a) != vlen(b) || vlen(out) != vlen(a) {
                    return Err(width(format!(
                        "{} lanes from {} and {}",
                        vlen(out),
                        vlen(a),
                        vlen(b)
                    )));
                }
            }
            Instr::VecBinaryVS { out, a, b, .. } => {
                use_v!(a);
                use_s!(b);
                def_v!(out);
                if vlen(out) != vlen(a) {
                    return Err(width(format!("{} lanes from {}", vlen(out), vlen(a))));
                }
            }
            Instr::VecMatMult { out, a, side: s } => {
                let (r, c) = side(s)?;
                use_v!(a);
                def_v!(out);
                if vlen(a) != r || vlen(out) != c {
                    return Err(width(format!(
                        "row of {} lanes times a {r}x{c} side into {} lanes",
                        vlen(a),
                        vlen(out)
                    )));
                }
            }
            Instr::Dot { out, a, b } => {
                use_v!(a);
                use_v!(b);
                if vlen(a) != vlen(b) {
                    return Err(width(format!("dot of {} and {} lanes", vlen(a), vlen(b))));
                }
                def_s!(out);
            }
            Instr::VecAgg { out, a, .. } => {
                use_v!(a);
                def_s!(out);
            }
        }
    }
    Ok(Defs { scalar: sdef, vector: vdef })
}

/// Spec ↔ CPlan agreement plus program soundness and sparse-claim
/// re-derivation for one compiled operator.
fn check_spec(op_ix: usize, cp: &CPlan, spec: &FusedSpec) -> Result<(), VerifyError> {
    let ill = |detail: String| VerifyError::IllegalTemplate { op_ix, detail };
    let spec_ttype = match spec {
        FusedSpec::Cell(_) => TemplateType::Cell,
        FusedSpec::MAgg(_) => TemplateType::MAgg,
        FusedSpec::Row(_) => TemplateType::Row,
        FusedSpec::Outer(_) => TemplateType::Outer,
    };
    if spec_ttype != cp.ttype {
        return Err(ill(format!(
            "compiled as {} but planned as {:?}",
            spec.template_name(),
            cp.ttype
        )));
    }
    let cx = ProgCx {
        op_ix,
        ttype: cp.ttype,
        iter_rows: cp.iter_rows,
        iter_cols: cp.iter_cols,
        side_dims: &cp.side_dims,
        n_scalars: cp.scalars.len(),
    };
    let prog = spec.program();
    let defs = check_program(&cx, prog)?;
    let result_s = |r: u16, what: &str| -> Result<(), VerifyError> {
        if (r as usize) >= defs.scalar.len() || !defs.scalar[r as usize] {
            return Err(VerifyError::DanglingRegister {
                op_ix,
                instr: prog.instrs.len(),
                detail: format!("{what} reads undefined scalar register {r}"),
            });
        }
        Ok(())
    };
    let result_v = |v: u16, what: &str| -> Result<(), VerifyError> {
        if (v as usize) >= defs.vector.len() || !defs.vector[v as usize] {
            return Err(VerifyError::DanglingRegister {
                op_ix,
                instr: prog.instrs.len(),
                detail: format!("{what} reads undefined vector register {v}"),
            });
        }
        Ok(())
    };
    match spec {
        FusedSpec::Cell(c) => {
            result_s(c.result, "cell result")?;
            check_sparse_claim(op_ix, cp, prog, &[c.result], c.sparse_safe)?;
            check_mono_shapes(op_ix, prog, &[c.result])?;
        }
        FusedSpec::MAgg(m) => {
            if m.results.is_empty() {
                return Err(ill("MAgg spec with no aggregates".into()));
            }
            for &(r, _) in &m.results {
                result_s(r, "multi-agg result")?;
            }
            let regs: Vec<u16> = m.results.iter().map(|&(r, _)| r).collect();
            check_sparse_claim(op_ix, cp, prog, &regs, m.sparse_safe)?;
            check_mono_shapes(op_ix, prog, &regs)?;
        }
        FusedSpec::Outer(o) => {
            result_s(o.result, "outer result")?;
            match cp.outer_uv {
                Some((u, v, rank)) => {
                    if (o.u_side, o.v_side, o.rank) != (u, v, rank) {
                        return Err(ill(format!(
                            "spec UV binding ({}, {}, rank {}) disagrees with plan ({u}, {v}, rank {rank})",
                            o.u_side, o.v_side, o.rank
                        )));
                    }
                }
                None => return Err(ill("Outer spec without a plan UV binding".into())),
            }
            check_sparse_claim(op_ix, cp, prog, &[o.result], o.sparse_safe)?;
            check_mono_shapes(op_ix, prog, &[o.result])?;
        }
        FusedSpec::Row(r) => {
            if (r.out_rows, r.out_cols) != (cp.out_rows, cp.out_cols) {
                return Err(VerifyError::PlanGeometryMismatch {
                    detail: format!(
                        "operator #{op_ix} spec writes {}x{} but the plan says {}x{}",
                        r.out_rows, r.out_cols, cp.out_rows, cp.out_cols
                    ),
                });
            }
            match r.out {
                RowOut::NoAgg { src } | RowOut::ColAgg { src } => {
                    result_v(src, "row output")?;
                }
                RowOut::RowAgg { src } | RowOut::FullAgg { src } => {
                    result_s(src, "row output")?;
                }
                RowOut::OuterColAgg { left, right } => {
                    result_v(left, "row outer output")?;
                    result_v(right, "row outer output")?;
                }
                RowOut::ColAggMultAdd { vec, scalar } => {
                    result_v(vec, "row output")?;
                    result_s(scalar, "row output")?;
                }
            }
            // Re-lower the kernel under the plan's side geometry and audit
            // the hoisting + sparse-row classification.
            let kernel = compile_row_kernel(r, &cp.side_dims);
            check_row_kernel(op_ix, r, &cp.side_dims, &kernel)?;
        }
    }
    Ok(())
}

/// Re-audits the monomorphizer's shape classification for a block-template
/// program (DESIGN.md substitution X10): the kernel is re-lowered from the
/// register program and, for every result register, the stored mono kernel
/// must equal an independent re-derivation via [`mono::classify`], must
/// never coexist with a closure-specialized fast kernel on the same
/// register (dispatch priority would silently shadow it), and must carry a
/// specialized shape class.
pub fn check_mono_shapes(op_ix: usize, prog: &Program, results: &[u16]) -> Result<(), VerifyError> {
    let err = |detail: String| VerifyError::MonoShapeMismatch { op_ix, detail };
    let kernel = compile_kernel(prog);
    for &r in results {
        let stored = kernel.mono_for(r);
        if kernel.fast_for(r).is_some() {
            if stored.is_some() {
                return Err(err(format!(
                    "register {r} holds both a fast kernel and a mono kernel"
                )));
            }
            continue;
        }
        let rederived = mono::classify(&kernel.block, r);
        if stored != rederived.as_ref() {
            return Err(err(format!(
                "register {r}: stored mono kernel {:?} != re-derived {:?}",
                stored.map(|m| m.class()),
                rederived.as_ref().map(|m| m.class())
            )));
        }
        if let Some(m) = stored {
            if !m.class().is_specialized() {
                return Err(err(format!(
                    "register {r}: mono kernel classified as {:?}",
                    m.class()
                )));
            }
        }
    }
    Ok(())
}

/// Audits `sparse_safe` for scalar-program templates: the structural claim
/// must be derivable from the CPlan, and the compiled program must actually
/// map a zero main cell to zero results (numeric probe with randomized side
/// and scalar values — a one-sided check that catches programs whose code
/// drifted from the plan they claim to implement).
fn check_sparse_claim(
    op_ix: usize,
    cp: &CPlan,
    prog: &Program,
    results: &[u16],
    claimed: bool,
) -> Result<(), VerifyError> {
    if !claimed {
        // Conservative (false) claims only cost performance, never
        // correctness: nothing to audit.
        return Ok(());
    }
    if !cp.sparse_safe() {
        return Err(VerifyError::SparseClaim {
            op_ix,
            detail: "spec claims sparse_safe but the plan is not zero-preserving".into(),
        });
    }
    // Numeric zero-probe: main = 0, everything else pseudo-random in
    // [0.25, 3). Deterministic (xorshift64, seeded by op index) so failures
    // reproduce.
    let state = Cell::new(0x9E37_79B9_7F4A_7C15u64 ^ ((op_ix as u64) << 17) | 1);
    let next = || {
        let mut s = state.get();
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        state.set(s);
        0.25 + (s % 1000) as f64 / 1000.0 * 2.75
    };
    let mut regs = vec![0.0f64; prog.n_regs as usize];
    for _trial in 0..3 {
        let scalars: Vec<f64> = (0..cp.scalars.len()).map(|_| next()).collect();
        regs.iter_mut().for_each(|r| *r = 0.0);
        eval_scalar_program(prog, &mut regs, 0.0, next(), &|_, _| next(), &scalars);
        for &r in results {
            let v = regs[r as usize];
            if v != 0.0 {
                return Err(VerifyError::SparseClaim {
                    op_ix,
                    detail: format!(
                        "zero-probe: a zero main cell produced {v} in result register {r}"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Audits a lowered Row kernel: every instruction hoisted to the invariant
/// section must be provably loop-invariant (its operands defined by earlier
/// invariant instructions, no main-row dependence, no per-row side access),
/// and the `sparse_main_ok` claim must re-derive from the per-row body.
pub fn check_row_kernel(
    op_ix: usize,
    spec: &fusedml_core::spoof::RowSpec,
    side_dims: &[(usize, usize)],
    kernel: &RowKernel,
) -> Result<(), VerifyError> {
    let n_regs = spec.prog.n_regs as usize;
    let n_vregs = spec.prog.vreg_lens.len();
    let mut sdef = vec![false; n_regs];
    let mut vdef = vec![false; n_vregs];
    let is_main = |v: u16| kernel.main_vregs.contains(&v);
    for (i, ins) in kernel.invariant.iter().enumerate() {
        let err = |detail: String| VerifyError::NotLoopInvariant { op_ix, instr: i, detail };
        let inv_s = |r: u16, sdef: &[bool]| -> Result<(), VerifyError> {
            if (r as usize) >= n_regs || !sdef[r as usize] {
                return Err(VerifyError::NotLoopInvariant {
                    op_ix,
                    instr: i,
                    detail: format!("scalar operand {r} is not invariant-defined"),
                });
            }
            Ok(())
        };
        let inv_v = |v: u16, vdef: &[bool]| -> Result<(), VerifyError> {
            if (v as usize) >= n_vregs || !vdef[v as usize] {
                return Err(VerifyError::NotLoopInvariant {
                    op_ix,
                    instr: i,
                    detail: format!("vector operand {v} is not invariant-defined"),
                });
            }
            if kernel.main_vregs.contains(&v) {
                return Err(VerifyError::NotLoopInvariant {
                    op_ix,
                    instr: i,
                    detail: format!("vector operand {v} aliases the main row"),
                });
            }
            Ok(())
        };
        match *ins {
            Instr::LoadConst { out, .. } | Instr::LoadScalar { out, .. } => {
                sdef[out as usize] = true;
            }
            Instr::LoadSide { out, access, .. } => {
                if access != SideAccess::Scalar {
                    return Err(err(format!("hoisted {access:?} side load varies per row")));
                }
                sdef[out as usize] = true;
            }
            Instr::LoadMain { .. } | Instr::LoadMainRow { .. } => {
                return Err(err("hoisted main-input load varies per row".into()));
            }
            Instr::LoadUVDot { .. } => {
                return Err(err("UVDot load in a Row kernel".into()));
            }
            Instr::LoadSideRow { out, side, cl, cu } => {
                let (r, c) = side_dims.get(side).copied().unwrap_or((0, 0));
                if !(whole_vector_load(r, c, cl, cu) || r == 1) {
                    return Err(err(format!(
                        "hoisted side-row slice {cl}..{cu} of a {r}x{c} side varies per row"
                    )));
                }
                vdef[out as usize] = true;
            }
            Instr::Unary { out, a, .. } => {
                inv_s(a, &sdef)?;
                sdef[out as usize] = true;
            }
            Instr::Binary { out, a, b, .. } => {
                inv_s(a, &sdef)?;
                inv_s(b, &sdef)?;
                sdef[out as usize] = true;
            }
            Instr::Ternary { out, a, b, c, .. } => {
                inv_s(a, &sdef)?;
                inv_s(b, &sdef)?;
                inv_s(c, &sdef)?;
                sdef[out as usize] = true;
            }
            Instr::VecUnary { out, a, .. } | Instr::VecCumsum { out, a } => {
                inv_v(a, &vdef)?;
                vdef[out as usize] = true;
            }
            Instr::VecBinaryVV { out, a, b, .. } => {
                inv_v(a, &vdef)?;
                inv_v(b, &vdef)?;
                vdef[out as usize] = true;
            }
            Instr::VecBinaryVS { out, a, b, .. } => {
                inv_v(a, &vdef)?;
                inv_s(b, &sdef)?;
                vdef[out as usize] = true;
            }
            Instr::VecMatMult { out, a, .. } => {
                inv_v(a, &vdef)?;
                vdef[out as usize] = true;
            }
            Instr::Dot { out, a, b } => {
                inv_v(a, &vdef)?;
                inv_v(b, &vdef)?;
                sdef[out as usize] = true;
            }
            Instr::VecAgg { out, a, .. } => {
                inv_v(a, &vdef)?;
                sdef[out as usize] = true;
            }
        }
    }
    // The invariant-vreg bitmap must not claim a main-row register.
    for &m in &kernel.main_vregs {
        if kernel.invariant_vregs.get(m as usize).copied().unwrap_or(false) {
            return Err(VerifyError::NotLoopInvariant {
                op_ix,
                instr: kernel.invariant.len(),
                detail: format!("main-row register {m} is marked invariant"),
            });
        }
    }
    // Re-derive sparse_main_ok from the per-row body: element-wise vector
    // ops and cumsum need the dense main row; everything else consumes
    // sparse rows directly. A `true` claim the body does not support would
    // execute sparse mains over a densified view's missing zeros.
    if kernel.sparse_main_ok {
        let dense_use = kernel.per_row.iter().position(|ins| match *ins {
            Instr::VecUnary { a, .. } | Instr::VecCumsum { a, .. } => is_main(a),
            Instr::VecBinaryVV { a, b, .. } => is_main(a) || is_main(b),
            Instr::VecBinaryVS { a, .. } => is_main(a),
            _ => false,
        });
        if let Some(i) = dense_use {
            return Err(VerifyError::SparseClaim {
                op_ix,
                detail: format!(
                    "kernel claims sparse_main_ok but per-row instr {i} consumes the main row element-wise"
                ),
            });
        }
    }
    Ok(())
}

// ===========================================================================
// Layer 4: task graph
// ===========================================================================

/// Task-graph consistency: refcounts, byte estimates, spill eligibility,
/// producer counts, and levels — all recomputed from first principles.
pub fn check_task_graph(
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    graph: &TaskGraph,
    facts: &Liveness,
) -> Result<(), VerifyError> {
    let n_hops = dag.len();
    let n_tasks = graph.tasks.len();
    for (name, len, want) in [
        ("reads", graph.reads.len(), n_hops),
        ("consumers_of", graph.consumers_of.len(), n_hops),
        ("spill_ok", graph.spill_ok.len(), n_hops),
        ("n_producers", graph.n_producers.len(), n_tasks),
        ("task_out_bytes", graph.task_out_bytes.len(), n_tasks),
    ] {
        if len != want {
            return Err(VerifyError::TaskGraphMalformed {
                detail: format!("{name} has {len} entries, expected {want}"),
            });
        }
    }
    let mut all_basic = true;
    for (t, task) in graph.tasks.iter().enumerate() {
        for &d in &task.deps {
            if d.index() >= n_hops {
                return Err(VerifyError::TaskGraphMalformed {
                    detail: format!("task {t} depends on out-of-range hop {d}"),
                });
            }
        }
        match &task.kind {
            TaskKind::Basic(h) => {
                if h.index() >= n_hops {
                    return Err(VerifyError::TaskGraphMalformed {
                        detail: format!("task {t} computes out-of-range hop {h}"),
                    });
                }
            }
            TaskKind::Fused { op_ix } => {
                all_basic = false;
                let ops = plan.map_or(0, |p| p.operators.len());
                if *op_ix >= ops {
                    return Err(VerifyError::TaskGraphMalformed {
                        detail: format!("task {t} references fused operator #{op_ix} of {ops}"),
                    });
                }
            }
            TaskKind::Handcoded(_) => all_basic = false,
        }
    }
    // Refcounts: one read per task dependency occurrence, +1 per DAG root.
    let mut expected_reads = vec![0u32; n_hops];
    for task in &graph.tasks {
        for &d in &task.deps {
            expected_reads[d.index()] += 1;
        }
    }
    for &r in dag.roots() {
        expected_reads[r.index()] += 1;
    }
    for (h, (&exp, &got)) in expected_reads.iter().zip(graph.reads.iter()).enumerate() {
        if exp != got {
            return Err(VerifyError::RefcountMismatch {
                hop: h as u32,
                expected: exp,
                stored: got,
            });
        }
    }
    // In Base mode (every task basic) the demanded set is exactly the live
    // set, so refcounts must equal the liveness consumer counts plus the
    // root bonus. Fused operators legitimately collapse reads.
    if all_basic && facts.consumers.len() == n_hops && facts.is_root.len() == n_hops {
        for h in 0..n_hops {
            let exp = facts.consumers[h] + u32::from(facts.is_root[h]);
            if graph.reads[h] != exp {
                return Err(VerifyError::RefcountMismatch {
                    hop: h as u32,
                    expected: exp,
                    stored: graph.reads[h],
                });
            }
        }
    }
    // Output-byte estimates straight from the hop size facts.
    let est = |h: fusedml_hop::HopId| dag.hop(h).size.bytes().max(0.0) as usize;
    for (t, task) in graph.tasks.iter().enumerate() {
        let exp = match &task.kind {
            TaskKind::Basic(h) => est(*h),
            TaskKind::Handcoded(hc) => est(hc.root),
            TaskKind::Fused { op_ix } => match plan {
                Some(p) => p.operators[*op_ix].roots.iter().map(|&r| est(r)).sum(),
                None => {
                    return Err(VerifyError::TaskGraphMalformed {
                        detail: format!("task {t} is fused but no plan is bound"),
                    })
                }
            },
        };
        if graph.task_out_bytes[t] != exp {
            return Err(VerifyError::TaskBytesMismatch {
                task: t,
                expected: exp,
                stored: graph.task_out_bytes[t],
            });
        }
    }
    // Spill eligibility: leaves are caller-owned `Arc` clones (spilling them
    // frees nothing), and sub-threshold values churn the spill tier.
    for h in 0..n_hops {
        let hop = dag.hop(fusedml_hop::HopId(h as u32));
        let exp = !hop.kind.is_leaf() && hop.size.bytes().max(0.0) as usize >= MIN_SPILL_BYTES;
        if graph.spill_ok[h] != exp {
            let detail = if graph.spill_ok[h] && hop.kind.is_leaf() {
                "leaf binding marked spill-eligible".to_string()
            } else if graph.spill_ok[h] {
                "sub-threshold value marked spill-eligible".to_string()
            } else {
                "eligible intermediate marked ineligible".to_string()
            };
            return Err(VerifyError::SpillEligibility { hop: h as u32, detail });
        }
    }
    // Producer counts and levels, recomputed exactly as `prepare` derives
    // them (distinct producer tasks; longest-path levels by fixpoint).
    let mut producer: Vec<Option<usize>> = vec![None; n_hops];
    for (t, task) in graph.tasks.iter().enumerate() {
        for h in task_outputs(task, plan) {
            producer[h.index()] = Some(t);
        }
    }
    let mut n_producers = vec![0u32; n_tasks];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n_tasks];
    let mut seen: Vec<usize> = Vec::new();
    for (t, task) in graph.tasks.iter().enumerate() {
        seen.clear();
        for &d in &task.deps {
            if let Some(p) = producer[d.index()] {
                if !seen.contains(&p) {
                    seen.push(p);
                    n_producers[t] += 1;
                    consumers[p].push(t);
                }
            }
        }
    }
    for (t, &expected) in n_producers.iter().enumerate() {
        if graph.n_producers[t] != expected {
            return Err(VerifyError::TaskGraphMalformed {
                detail: format!(
                    "task {t} claims {} producers, recomputation gives {expected}",
                    graph.n_producers[t]
                ),
            });
        }
    }
    let mut level = vec![0usize; n_tasks];
    loop {
        let mut changed = false;
        for t in 0..n_tasks {
            let lvl = level[t] + 1;
            for &c in &consumers[t] {
                if level[c] < lvl {
                    level[c] = lvl;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (t, task) in graph.tasks.iter().enumerate() {
        if task.level != level[t] {
            return Err(VerifyError::TaskGraphMalformed {
                detail: format!(
                    "task {t} is at level {}, recomputation gives {}",
                    task.level, level[t]
                ),
            });
        }
    }
    Ok(())
}

/// The hops a task writes (mirror of the scheduler's store step).
fn task_outputs<'a>(
    task: &'a crate::schedule::Task,
    plan: Option<&'a FusionPlan>,
) -> Vec<fusedml_hop::HopId> {
    match &task.kind {
        TaskKind::Basic(h) => vec![*h],
        TaskKind::Handcoded(hc) => vec![hc.root],
        TaskKind::Fused { op_ix } => {
            plan.map_or_else(Vec::new, |p| p.operators[*op_ix].roots.clone())
        }
    }
}

// ===========================================================================
// Layer 5: residency state machine
// ===========================================================================

/// The observable residency states of a scheduler value slot (the `Slot`
/// enum with payloads erased) — the alphabet of the transition spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotState {
    Empty,
    Resident,
    Streamed,
    Spilled,
    Loading,
    Evicting,
}

/// One recorded slot transition. Debug builds record these under the
/// scheduler lock (so traces are totally ordered) and replay them through
/// [`check_residency_trace`] after every run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotTransition {
    pub slot: usize,
    pub from: SlotState,
    pub to: SlotState,
}

/// The residency transition table. Everything not listed is a lifecycle bug:
///
/// | from       | to         | event                                        |
/// |------------|------------|----------------------------------------------|
/// | `Empty`    | `Resident` | leaf materialized / task output stored       |
/// | `Empty`    | `Streamed` | over-budget leaf bound by reference          |
/// | `Resident` | `Empty`    | last read taken / root moved out / sweep     |
/// | `Streamed` | `Empty`    | last read taken / root moved out / sweep     |
/// | `Resident` | `Evicting` | eviction began (I/O outside the lock)        |
/// | `Evicting` | `Spilled`  | spill write succeeded                        |
/// | `Evicting` | `Resident` | spill write failed; run degrades resident    |
/// | `Spilled`  | `Loading`  | fault-in or prefetch began                   |
/// | `Spilled`  | `Empty`    | root discarded / failure sweep               |
/// | `Loading`  | `Resident` | reload succeeded                             |
/// | `Loading`  | `Empty`    | reload failed; failure sweep reclaimed slot  |
///
/// Notably *absent*: `Evicting → Empty`. Eviction I/O completes before its
/// worker returns, and the failure sweep runs only after the workers join —
/// a sweep observing `Evicting` means a worker abandoned a transition.
pub fn allowed_transition(from: SlotState, to: SlotState) -> bool {
    use SlotState as S;
    matches!(
        (from, to),
        (S::Empty, S::Resident)
            | (S::Empty, S::Streamed)
            | (S::Resident, S::Empty)
            | (S::Streamed, S::Empty)
            | (S::Resident, S::Evicting)
            | (S::Evicting, S::Spilled)
            | (S::Evicting, S::Resident)
            | (S::Spilled, S::Loading)
            | (S::Spilled, S::Empty)
            | (S::Loading, S::Resident)
            | (S::Loading, S::Empty)
    )
}

/// Replays a recorded trace against the transition table: every step must
/// start from the slot's tracked state (slots start `Empty`), every
/// transition must be allowed, and at the end of the run every slot must be
/// `Empty` again (roots are moved out; failures sweep).
pub fn check_residency_trace(n_slots: usize, trace: &[SlotTransition]) -> Result<(), VerifyError> {
    let mut states = vec![SlotState::Empty; n_slots];
    for (step, tr) in trace.iter().enumerate() {
        if tr.slot >= n_slots {
            return Err(VerifyError::ResidencyViolation {
                slot: tr.slot,
                from: tr.from,
                to: tr.to,
                step,
            });
        }
        let tracked = states[tr.slot];
        if tracked != tr.from || !allowed_transition(tr.from, tr.to) {
            return Err(VerifyError::ResidencyViolation {
                slot: tr.slot,
                from: tracked,
                to: tr.to,
                step,
            });
        }
        states[tr.slot] = tr.to;
    }
    for (slot, &s) in states.iter().enumerate() {
        if s != SlotState::Empty {
            return Err(VerifyError::ResidencyViolation {
                slot,
                from: s,
                to: SlotState::Empty,
                step: trace.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_table_matches_spec() {
        use SlotState as S;
        assert!(allowed_transition(S::Empty, S::Resident));
        assert!(allowed_transition(S::Evicting, S::Spilled));
        assert!(allowed_transition(S::Loading, S::Empty));
        assert!(!allowed_transition(S::Evicting, S::Empty), "abandoned eviction");
        assert!(!allowed_transition(S::Resident, S::Spilled), "must pass Evicting");
        assert!(!allowed_transition(S::Streamed, S::Spilled), "streamed never spills");
        assert!(!allowed_transition(S::Empty, S::Spilled));
    }

    #[test]
    fn trace_replay_catches_state_drift() {
        use SlotState as S;
        let ok = [
            SlotTransition { slot: 0, from: S::Empty, to: S::Resident },
            SlotTransition { slot: 0, from: S::Resident, to: S::Evicting },
            SlotTransition { slot: 0, from: S::Evicting, to: S::Spilled },
            SlotTransition { slot: 0, from: S::Spilled, to: S::Loading },
            SlotTransition { slot: 0, from: S::Loading, to: S::Resident },
            SlotTransition { slot: 0, from: S::Resident, to: S::Empty },
        ];
        assert!(check_residency_trace(1, &ok).is_ok());
        // A transition claiming a from-state the slot is not in.
        let drift = [
            SlotTransition { slot: 0, from: S::Empty, to: S::Resident },
            SlotTransition { slot: 0, from: S::Spilled, to: S::Loading },
        ];
        let err = check_residency_trace(1, &drift).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::ResidencyViolation { slot: 0, from: SlotState::Resident, step: 1, .. }
            ),
            "{err}"
        );
        // A trace that strands a value.
        let stranded = [SlotTransition { slot: 0, from: S::Empty, to: S::Resident }];
        let err = check_residency_trace(1, &stranded).unwrap_err();
        assert!(matches!(err, VerifyError::ResidencyViolation { step: 1, .. }), "{err}");
    }
}
