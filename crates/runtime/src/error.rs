//! Typed execution errors: every way a run can fail, as data.
//!
//! SystemML earns its production claim by running fused plans on resilient
//! backends; the single-process equivalent is an engine where failures are
//! *contained, typed, and recoverable*. [`ExecError`] is the containment
//! boundary: `CompiledScript::try_execute` and the `Engine::try_execute*`
//! APIs surface one of these instead of panicking, and the scheduler
//! guarantees that after any of them the engine is bitwise-correct for the
//! next execution — slots swept, pooled buffers returned, spill tokens
//! discarded, sibling threads untouched.
//!
//! The panicking `execute` APIs are retained as thin wrappers that unwrap
//! these errors, so callers that treated every failure as fatal keep their
//! behaviour.

use fusedml_hop::interp::BindError;
use fusedml_linalg::fault::FaultSite;
use std::fmt;
use std::io;

/// Why an execution failed. Every variant names the failing operation, so a
/// serving layer can log *which* op of *which* request died without parsing
/// panic strings.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// A live `Read` of the DAG has no matrix bound under its name.
    UnboundInput {
        /// The missing input's name.
        name: String,
    },
    /// A bound matrix disagrees with the geometry the plan was compiled
    /// for, in a way geometry revalidation could not reconcile (mutually
    /// inconsistent shapes recompile to a DAG the bindings still miss).
    ShapeMismatch {
        /// The offending input's name.
        name: String,
        /// `(rows, cols)` the plan was compiled for.
        expected: (usize, usize),
        /// `(rows, cols)` actually bound.
        bound: (usize, usize),
    },
    /// Spill-tier I/O failed and retries were exhausted. `during` is
    /// `"write"` or `"read"`; reload failures are fatal to the run (the
    /// value exists nowhere else), write failures normally degrade to
    /// resident-only execution instead of surfacing here.
    SpillIo {
        /// The operation or slot the bytes belonged to.
        op: String,
        /// `"write"` or `"read"`.
        during: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A worker panicked executing a task. The panic was caught on the
    /// worker, pending tasks were cancelled, and the engine was swept — the
    /// panic never crosses to sibling serving threads.
    WorkerPanic {
        /// Identity of the panicking operator.
        op: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// The scheduler could not reserve memory for a task under the engine
    /// budget (only reachable through the `Alloc` fault-injection site
    /// today — the real reservation path degrades over budget, best
    /// effort).
    BudgetExhausted {
        /// The task whose reservation failed.
        op: String,
        /// Bytes the reservation asked for.
        needed: usize,
        /// The engine's resident-bytes budget.
        budget: usize,
    },
    /// A fault-injection site failed this run on purpose (the chaos
    /// harness's non-panicking task failure).
    Injected {
        /// The site that fired.
        site: FaultSite,
        /// The task it fired on.
        op: String,
    },
    /// One worker shard of a sharded fused operator panicked. The panic was
    /// caught on the shard, sibling shards were cancelled
    /// (first-failure-wins), only the owning request fails, and the shard
    /// pool keeps serving.
    ShardFailure {
        /// Identity of the sharded operator.
        op: String,
        /// Index of the first shard that failed.
        shard: usize,
        /// The shard's panic payload, stringified.
        message: String,
    },
    /// Static plan verification rejected a compiled artifact before it could
    /// execute (see [`crate::verify`]). Only reachable when
    /// `EngineBuilder::verify_plans` is on.
    Verify(crate::verify::VerifyError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundInput { name } => write!(f, "unbound input matrix '{name}'"),
            ExecError::ShapeMismatch { name, expected, bound } => write!(
                f,
                "bound matrix '{name}' is {}x{} but the plan was compiled for {}x{}",
                bound.0, bound.1, expected.0, expected.1
            ),
            ExecError::SpillIo { op, during, source } => {
                write!(f, "spill {during} failed for {op}: {source}")
            }
            ExecError::WorkerPanic { op, message } => {
                write!(f, "worker panicked executing {op}: {message}")
            }
            ExecError::BudgetExhausted { op, needed, budget } => {
                write!(f, "could not reserve {needed} bytes for {op} under a {budget}-byte budget")
            }
            ExecError::Injected { site, op } => {
                write!(f, "injected {site:?} fault at {op}")
            }
            ExecError::ShardFailure { op, shard, message } => {
                write!(f, "shard {shard} failed executing {op}: {message}")
            }
            ExecError::Verify(e) => write!(f, "plan verification failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::SpillIo { source, .. } => Some(source),
            ExecError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::verify::VerifyError> for ExecError {
    fn from(e: crate::verify::VerifyError) -> Self {
        ExecError::Verify(e)
    }
}

impl From<BindError> for ExecError {
    fn from(e: BindError) -> Self {
        match e {
            BindError::Unbound { name } => ExecError::UnboundInput { name },
            BindError::Shape { name, expected, bound } => {
                ExecError::ShapeMismatch { name, expected, bound }
            }
        }
    }
}

/// Renders a caught panic payload for [`ExecError::WorkerPanic`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_op() {
        let e =
            ExecError::WorkerPanic { op: "basic MatMult (hop 4)".into(), message: "boom".into() };
        let s = e.to_string();
        assert!(s.contains("basic MatMult (hop 4)") && s.contains("boom"), "{s}");
        let e = ExecError::SpillIo {
            op: "slot 7".into(),
            during: "read",
            source: io::Error::other("disk gone"),
        };
        assert!(e.to_string().contains("spill read failed"), "{e}");
        assert!(std::error::Error::source(&e).is_some(), "io source preserved");
    }

    #[test]
    fn bind_errors_convert() {
        let e: ExecError = BindError::Unbound { name: "X".into() }.into();
        assert!(matches!(e, ExecError::UnboundInput { ref name } if name == "X"));
        let e: ExecError =
            BindError::Shape { name: "Y".into(), expected: (2, 2), bound: (3, 3) }.into();
        assert!(matches!(e, ExecError::ShapeMismatch { bound: (3, 3), .. }));
    }
}
