#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Criterion benchmarks for Figure 13: KMeans iteration cost as k grows
//! (Base vs Gen).

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_algos::kmeans;
use fusedml_runtime::{Engine, FusionMode};

fn benches(c: &mut Criterion) {
    let x = kmeans::synthetic_data(10_000, 100, 1.0, 8);
    for k in [2usize, 16] {
        let mut g = c.benchmark_group(format!("fig13_kmeans_k{k}"));
        g.sample_size(10);
        for mode in [FusionMode::Base, FusionMode::Gen] {
            let cfg = kmeans::KMeansConfig { k, max_iter: 2, ..Default::default() };
            // One engine per mode: timed iterations run with warm pool + caches.
            let engine = Engine::new(mode);
            g.bench_function(format!("{mode:?}"), |b| {
                b.iter(|| std::hint::black_box(kmeans::run(&engine, &x, &cfg)))
            });
        }
        g.finish();
    }
}

criterion_group!(fig13_benches, benches);
criterion_main!(fig13_benches);
