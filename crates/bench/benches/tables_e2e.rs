#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Criterion benchmarks for the end-to-end tables (4 and 5): representative
//! algorithm runs under Base / Fused / Gen.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_algos::{alscg, l2svm};
use fusedml_runtime::{Engine, FusionMode};

fn benches(c: &mut Criterion) {
    // Table 4 representative: L2SVM on 50k x 10 dense.
    let (x, y) = l2svm::synthetic_data(50_000, 10, 1.0, 11);
    let mut g = c.benchmark_group("table4_l2svm_50kx10");
    g.sample_size(10);
    for mode in [FusionMode::Base, FusionMode::Fused, FusionMode::Gen] {
        let cfg = l2svm::L2svmConfig { max_iter: 5, ..Default::default() };
        // One engine per mode: timed iterations run with warm pool + caches.
        let engine = Engine::new(mode);
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| std::hint::black_box(l2svm::run(&engine, &x, &y, &cfg)))
        });
    }
    g.finish();

    // Table 5 representative: ALS-CG on sparse 2k x 2k (Fused vs Gen only;
    // Base would materialize the dense plane).
    let xa = alscg::synthetic_data(2_000, 2_000, 0.01, 21);
    let mut g = c.benchmark_group("table5_alscg_2kx2k");
    g.sample_size(10);
    for mode in [FusionMode::Fused, FusionMode::Gen] {
        let cfg = alscg::AlsConfig { rank: 20, max_iter: 1, ..Default::default() };
        let engine = Engine::new(mode);
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| std::hint::black_box(alscg::run(&engine, &xa, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(table_benches, benches);
criterion_main!(table_benches);
