#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Criterion benchmarks for Figure 9: `sum(X^2)` over uncompressed (ULA)
//! and compressed (CLA) representations.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_cla::{compress, ops as cops};
use fusedml_linalg::generate;
use fusedml_linalg::ops::{self, AggDir, AggOp, UnaryOp};

fn benches(c: &mut Criterion) {
    let x = generate::airline_like(100_000, 29, 20, 9);
    let cm = compress(&x);
    let mut g = c.benchmark_group("fig9_sum_x2_airline_like");
    g.sample_size(10);
    g.bench_function("ULA_base_two_ops", |b| {
        b.iter(|| {
            let sq = ops::unary(&x, UnaryOp::Pow2);
            std::hint::black_box(ops::agg(&sq, AggOp::Sum, AggDir::Full))
        })
    });
    g.bench_function("ULA_fused_single_pass", |b| {
        b.iter(|| std::hint::black_box(ops::agg(&x, AggOp::SumSq, AggDir::Full)))
    });
    g.bench_function("CLA_dictionary_only", |b| b.iter(|| std::hint::black_box(cops::sum_sq(&cm))));
    g.finish();
}

criterion_group!(fig9_benches, benches);
criterion_main!(fig9_benches);
