#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Criterion benchmarks for Figure 10: vector-primitive operators vs
//! inlined per-element code at two chain lengths (before/after the
//! code-size cliff).

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_core::codegen::CodegenOptions;
use fusedml_hop::interp::Bindings;
use fusedml_hop::DagBuilder;
use fusedml_linalg::generate;
use fusedml_runtime::{Engine, FusionMode};

fn footprint_dag(rows: usize, cols: usize, n_ops: usize) -> fusedml_hop::HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let rs = b.row_sums(x);
    let mut cur = b.div(x, rs);
    for i in 0..n_ops {
        let c = b.lit(1.0 + i as f64 * 1e-3);
        cur = b.mult(cur, c);
    }
    let s = b.sum(cur);
    b.build(vec![s])
}

fn benches(c: &mut Criterion) {
    let (rows, cols) = (5_000, 256);
    let mut bindings = Bindings::new();
    bindings.insert("X".to_string(), generate::rand_dense(rows, cols, 0.5, 2.0, 1));
    // The unfused multi-intermediate chain through the scheduled engine:
    // every link materializes, frees at last use, and draws from the pool.
    {
        let dag = footprint_dag(rows, cols, 8);
        let exec = Engine::new(FusionMode::Base);
        let _ = exec.execute(&dag, &bindings);
        let mut g = c.benchmark_group("fig10_chain_scheduled");
        g.sample_size(10);
        g.bench_function("base_n8", |b| {
            b.iter(|| std::hint::black_box(exec.execute(&dag, &bindings)))
        });
        g.finish();
    }
    for n_ops in [8usize, 64] {
        let dag = footprint_dag(rows, cols, n_ops);
        let mut g = c.benchmark_group(format!("fig10_n{n_ops}"));
        g.sample_size(10);
        for (label, inline) in [("primitives", false), ("inlined", true)] {
            let exec = Engine::builder(FusionMode::Gen)
                .codegen_options(CodegenOptions { inline_primitives: inline, ..Default::default() })
                .build();
            let _ = exec.execute(&dag, &bindings);
            g.bench_function(label, |b| {
                b.iter(|| std::hint::black_box(exec.execute(&dag, &bindings)))
            });
        }
        g.finish();
    }
}

criterion_group!(fig10_benches, benches);
criterion_main!(fig10_benches);
