#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Tile-width sweep for the block backend: runs the Figure 8(a) Cell
//! pattern (`sum(X⊙Y⊙Z)`, 2000×1000 dense) under `Gen` across tile widths,
//! for both the closure-specialized fast path and the generic tile body.
//! The sweet spot trades per-tile dispatch overhead (small widths) against
//! register-file cache residency (large widths); 256 is the shipped default.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_bench::experiments::fig8;
use fusedml_core::spoof::block::{self, CellBackend};
use fusedml_hop::interp::Bindings;
use fusedml_linalg::generate;
use fusedml_runtime::{Engine, FusionMode};

const WIDTHS: [usize; 7] = [32, 64, 128, 256, 512, 1024, 2048];

fn benches(c: &mut Criterion) {
    let (rows, cols) = (2_000, 1_000);
    let (dag, _) = fig8::cell_dag(rows, cols, 1.0);
    let mut b: Bindings = Bindings::new();
    for (i, n) in ["X", "Y", "Z"].iter().enumerate() {
        b.insert(n.to_string(), generate::rand_dense(rows, cols, -1.0, 1.0, i as u64));
    }
    let exec = Engine::new(FusionMode::Gen);
    let _ = exec.execute(&dag, &b); // compile

    for (group, backend) in [
        ("tile_sweep_cell_fast", CellBackend::BlockFast),
        ("tile_sweep_cell_generic", CellBackend::Block),
    ] {
        block::set_cell_backend(backend);
        let mut g = c.benchmark_group(group);
        g.sample_size(10);
        for w in WIDTHS {
            block::set_tile_width(w);
            g.bench_function(format!("w{w}"), |bch| {
                bch.iter(|| std::hint::black_box(exec.execute(&dag, &b)))
            });
        }
        g.finish();
        block::set_tile_width(block::DEFAULT_TILE_WIDTH);
    }
    // The scalar interpreter as the dispatch-overhead reference point.
    block::set_cell_backend(CellBackend::Scalar);
    let mut g = c.benchmark_group("tile_sweep_cell_scalar_reference");
    g.sample_size(10);
    g.bench_function("per_cell_interpreter", |bch| {
        bch.iter(|| std::hint::black_box(exec.execute(&dag, &b)))
    });
    g.finish();
    block::set_cell_backend(CellBackend::BlockFast);
}

criterion_group!(tile_sweep, benches);
criterion_main!(tile_sweep);
