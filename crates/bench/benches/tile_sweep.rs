#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Tile-width sweep for the block backend: runs the Figure 8(a) Cell
//! pattern (`sum(X⊙Y⊙Z)`, 2000×1000 dense) under `Gen` across tile widths
//! and cell backends. Width and backend are per-engine configuration
//! ([`fusedml_runtime::EngineBuilder::tile_width`] /
//! [`fusedml_runtime::EngineBuilder::cell_backend`]), so every sweep point
//! builds its own engine — no process globals are mutated. Each point
//! reports the backend and the kernel class it executed under (mono versus
//! interpreted) through the benchmark id.
//! The sweet spot trades per-tile dispatch overhead (small widths) against
//! register-file cache residency (large widths); 256 is the shipped default.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_bench::experiments::fig8;
use fusedml_core::spoof::block::CellBackend;
use fusedml_hop::interp::Bindings;
use fusedml_linalg::generate;
use fusedml_runtime::{Engine, FusionMode};

const WIDTHS: [usize; 7] = [32, 64, 128, 256, 512, 1024, 2048];

fn benches(c: &mut Criterion) {
    let (rows, cols) = (2_000, 1_000);
    let (dag, _) = fig8::cell_dag(rows, cols, 1.0);
    let mut b: Bindings = Bindings::new();
    for (i, n) in ["X", "Y", "Z"].iter().enumerate() {
        b.insert(n.to_string(), generate::rand_dense(rows, cols, -1.0, 1.0, i as u64));
    }

    for (group, backend) in [
        ("tile_sweep_cell_mono", CellBackend::Mono),
        ("tile_sweep_cell_fast", CellBackend::BlockFast),
        ("tile_sweep_cell_generic", CellBackend::Block),
    ] {
        let mut g = c.benchmark_group(group);
        g.sample_size(10);
        for w in WIDTHS {
            let exec = Engine::builder(FusionMode::Gen).tile_width(w).cell_backend(backend).build();
            let _ = exec.execute(&dag, &b); // compile + warm the kernel cache
            let stats = exec.stats();
            stats.reset();
            let _ = exec.execute(&dag, &b);
            let (mono, interp) = stats.mono_snapshot();
            let class = if mono > 0 && interp == 0 { "mono" } else { "interp" };
            g.bench_function(format!("w{w}/{backend:?}/{class}"), |bch| {
                bch.iter(|| std::hint::black_box(exec.execute(&dag, &b)))
            });
        }
        g.finish();
    }
    // The scalar interpreter as the dispatch-overhead reference point.
    let exec = Engine::builder(FusionMode::Gen).cell_backend(CellBackend::Scalar).build();
    let _ = exec.execute(&dag, &b);
    let mut g = c.benchmark_group("tile_sweep_cell_scalar_reference");
    g.sample_size(10);
    g.bench_function("per_cell_interpreter/Scalar/interp", |bch| {
        bch.iter(|| std::hint::black_box(exec.execute(&dag, &b)))
    });
    g.finish();
}

criterion_group!(tile_sweep, benches);
criterion_main!(tile_sweep);
