#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Criterion micro-benchmarks for the Figure 8 patterns (Cell, MAgg, Row,
//! Outer) comparing Base / Fused / Gen at a representative size.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_bench::experiments::fig8;
use fusedml_hop::interp::Bindings;
use fusedml_linalg::generate;
use fusedml_runtime::{Engine, FusionMode};

fn bench_pattern(c: &mut Criterion, group: &str, dag: &fusedml_hop::HopDag, bindings: &Bindings) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for mode in [FusionMode::Base, FusionMode::Fused, FusionMode::Gen] {
        let exec = Engine::new(mode);
        let _ = exec.execute(dag, bindings); // compile
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| std::hint::black_box(exec.execute(dag, bindings)))
        });
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    let (rows, cols) = (2_000, 1_000);
    // Fig 8(a): Cell chain.
    let (dag, _) = fig8::cell_dag(rows, cols, 1.0);
    let mut b: Bindings = Bindings::new();
    for (i, n) in ["X", "Y", "Z"].iter().enumerate() {
        b.insert(n.to_string(), generate::rand_dense(rows, cols, -1.0, 1.0, i as u64));
    }
    bench_pattern(c, "fig8a_cell_dense", &dag, &b);

    // Fig 8(c): MAgg.
    let (dag, _) = fig8::magg_dag(rows, cols, 1.0);
    bench_pattern(c, "fig8c_multiagg_dense", &dag, &b);

    // Fig 8(e): Row mv-chain.
    let (dag, _) = fig8::row_dag(rows, cols, 1, 1.0);
    let mut bv: Bindings = Bindings::new();
    bv.insert("X".to_string(), generate::rand_dense(rows, cols, -1.0, 1.0, 1));
    bv.insert("v".to_string(), generate::rand_dense(cols, 1, -1.0, 1.0, 2));
    bench_pattern(c, "fig8e_row_mvchain", &dag, &bv);

    // Row sparse: mlogreg-style t(X) %*% (w ⊙ (X %*% v)) over sparse X —
    // exercises the sparse-aware Row band execution (no densification).
    let (rows_sp, cols_sp) = (20_000, 1_000);
    let (dag, _) = fig8::row_sparse_dag(rows_sp, cols_sp, 0.01);
    let mut brs: Bindings = Bindings::new();
    brs.insert("X".to_string(), generate::rand_matrix(rows_sp, cols_sp, -1.0, 1.0, 0.01, 6));
    brs.insert("v".to_string(), generate::rand_dense(cols_sp, 1, -1.0, 1.0, 7));
    brs.insert("w".to_string(), generate::rand_dense(rows_sp, 1, 0.1, 1.0, 8));
    bench_pattern(c, "fig8row_sparse_mlogreg", &dag, &brs);

    // Fig 8(h): Outer, sparse driver.
    let (n, m) = (2_000, 2_000);
    let (dag, _) = fig8::outer_dag(n, m, 100, 0.01);
    let mut bo: Bindings = Bindings::new();
    bo.insert("X".to_string(), generate::rand_matrix(n, m, 1.0, 5.0, 0.01, 3));
    bo.insert("U".to_string(), generate::rand_dense(n, 100, 0.1, 1.0, 4));
    bo.insert("V".to_string(), generate::rand_dense(m, 100, 0.1, 1.0, 5));
    bench_pattern(c, "fig8h_outer_sparse", &dag, &bo);
}

criterion_group!(fig8_benches, benches);
criterion_main!(fig8_benches);
