#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Criterion benchmarks for Figure 11: operator compilation under the fast
//! (janino-like) vs heavyweight (javac-like) backends, with/without the
//! plan cache.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_core::codegen::{CodegenOptions, CompilerBackend};
use fusedml_core::explore::explore;
use fusedml_core::opt::{select_plans, CostModel, EnumConfig, SelectionPolicy};
use fusedml_core::plancache::PlanCache;
use fusedml_hop::DagBuilder;

fn sample_cplan(extra: usize) -> fusedml_core::cplan::CPlan {
    let mut b = DagBuilder::new();
    let x = b.read("X", 1000, 1000, 1.0);
    let y = b.read("Y", 1000, 1000, 1.0);
    let mut cur = b.mult(x, y);
    for j in 0..extra {
        let c = b.lit(2.0 + j as f64);
        cur = b.add(cur, c);
    }
    let s = b.sum(cur);
    let dag = b.build(vec![s]);
    let memo = explore(&dag);
    let sel = select_plans(
        &dag,
        &memo,
        SelectionPolicy::CostBased(EnumConfig::default()),
        &CostModel::default(),
    );
    fusedml_core::cplan::construct(&dag, &sel.operators[0]).expect("cplan")
}

fn benches(c: &mut Criterion) {
    let cplans: Vec<_> = (0..8).map(sample_cplan).collect();
    let mut g = c.benchmark_group("fig11_compile");
    for (backend, name) in [(CompilerBackend::Janino, "janino"), (CompilerBackend::Javac, "javac")]
    {
        let opts = CodegenOptions { backend, ..Default::default() };
        g.bench_function(format!("{name}_no_cache"), |b| {
            let cache = PlanCache::new();
            cache.set_enabled(false);
            b.iter(|| {
                for cp in &cplans {
                    std::hint::black_box(cache.get_or_compile(cp, &opts));
                }
            })
        });
        g.bench_function(format!("{name}_with_cache"), |b| {
            let cache = PlanCache::new();
            b.iter(|| {
                for cp in &cplans {
                    std::hint::black_box(cache.get_or_compile(cp, &opts));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(fig11_benches, benches);
criterion_main!(fig11_benches);
