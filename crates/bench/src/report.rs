//! Table rendering for the reproduction binaries.

/// A printed table with a caption, header, and float-formatted rows.
pub struct Table {
    caption: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(caption: &str, header: &[&str]) -> Self {
        Table {
            caption: caption.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Formats seconds with adaptive precision.
    pub fn secs(v: f64) -> String {
        if !v.is_finite() {
            "N/A".to_string()
        } else if v >= 100.0 {
            format!("{v:.0}")
        } else if v >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{:.2}ms", v * 1000.0)
        }
    }

    pub fn print(&self) {
        println!("\n== {} ==", self.caption);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(4)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_and_prints() {
        let mut t = Table::new("test", &["a", "b"]);
        t.row(vec!["x".into(), Table::secs(0.0123)]);
        t.row(vec!["y".into(), Table::secs(f64::INFINITY)]);
        assert_eq!(Table::secs(0.0123), "12.30ms");
        assert_eq!(Table::secs(123.4), "123");
        assert_eq!(Table::secs(f64::INFINITY), "N/A");
        t.print();
    }
}
