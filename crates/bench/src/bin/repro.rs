#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! The reproduction driver: prints the paper-style rows for every table and
//! figure of the evaluation.
//!
//! ```text
//! cargo run --release -p fusedml-bench --bin repro -- <experiment> [--full|--smoke]
//! experiments: fig8 fig9 fig10 fig11 fig12 fig13 table3 table4 table5 table6 all
//! ```
//!
//! `--smoke` runs a seconds-long single-size pass — CI uses it so
//! bench-path regressions fail the build instead of rotting silently.

use fusedml_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Quick
    };
    let which = args.first().map(String::as_str).unwrap_or("all");
    let run = |id: &str| match id {
        "fig8" => experiments::fig8::run(scale),
        "fig9" => experiments::fig9::run(scale),
        "fig10" => experiments::fig10::run(scale),
        "fig11" => experiments::fig11::run(scale),
        "fig12" => experiments::fig12::run(),
        "fig13" => experiments::fig13::run(scale),
        "table3" => experiments::tables::table3(scale),
        "table4" => experiments::tables::table4(scale),
        "table5" => experiments::tables::table5(scale),
        "table6" => experiments::tables::table6(scale),
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("known: fig8 fig9 fig10 fig11 fig12 fig13 table3 table4 table5 table6 all");
            std::process::exit(2);
        }
    };
    if which == "all" {
        for id in [
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table3", "table4", "table5",
            "table6",
        ] {
            println!("\n################ {id} ################");
            run(id);
        }
    } else {
        run(which);
    }
}
