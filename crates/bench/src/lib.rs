// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]
//! # fusedml-bench
//!
//! The benchmark harness reproducing every table and figure of the paper's
//! evaluation (§5). Each experiment is a library function printing the
//! paper-style rows; the `repro` binary dispatches by experiment id
//! (`fig8`…`fig13`, `table3`…`table6`), and the Criterion benches sample
//! representative points of the same workloads.
//!
//! Data sizes are scaled down from the paper by a documented factor (the
//! harness runs on one machine); the reproduction target is the *shape* of
//! each series — who wins, by roughly what factor, where crossovers fall.
//! See BENCH_NOTES.md (repo root) for the recorded baseline and
//! reproduction instructions.

pub mod experiments;
pub mod report;

use fusedml_hop::interp::Bindings;
use fusedml_hop::HopDag;
use fusedml_runtime::{Engine, FusionMode};
use std::time::Instant;

/// All execution modes of the evaluation, in table order.
pub const MODES: [FusionMode; 5] =
    [FusionMode::Base, FusionMode::Fused, FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR];

/// Median wall-clock seconds of `reps` executions of a DAG under a mode.
/// The DAG is compiled once ([`Engine::compile`]); the warm-up execution
/// fills the buffer pool, and the timed repetitions run the compiled script
/// with zero re-optimization.
pub fn time_dag(mode: FusionMode, dag: &HopDag, bindings: &Bindings, reps: usize) -> f64 {
    let engine = Engine::new(mode);
    let script = engine.compile(dag);
    let _ = script.execute(bindings); // warm-up: fills pool + kernel caches
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let _ = script.execute(bindings);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One timed run of a DAG under a mode, with the engine's fused-kernel
/// classification counters for a single execution (see
/// [`fusedml_runtime::ExecStats::mono_snapshot`]).
#[derive(Clone, Copy, Debug)]
pub struct TimedStats {
    /// Median wall-clock seconds over the timed repetitions.
    pub secs: f64,
    /// Fused operators executed in one run.
    pub fused_ops: usize,
    /// Fused operators that ran as a specialized (monomorphized or
    /// closure-specialized) static kernel.
    pub mono_ops: usize,
    /// Fused operators that fell back to the generic tile interpreter.
    pub interp_fused_ops: usize,
}

/// Like [`time_dag`], but also reports how the fused operators executed:
/// the per-run `fused`/`mono`/`interpreted` counters from the engine's
/// [`fusedml_runtime::ExecStats`].
pub fn time_dag_stats(
    mode: FusionMode,
    dag: &HopDag,
    bindings: &Bindings,
    reps: usize,
) -> TimedStats {
    let engine = Engine::new(mode);
    let script = engine.compile(dag);
    let _ = script.execute(bindings); // warm-up: fills pool + kernel caches
    engine.stats().reset();
    let _ = script.execute(bindings);
    let (fused_ops, _, _) = engine.stats().snapshot();
    let (mono_ops, interp_fused_ops) = engine.stats().mono_snapshot();
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let _ = script.execute(bindings);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    TimedStats { secs: times[times.len() / 2], fused_ops, mono_ops, interp_fused_ops }
}

/// Times a closure once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

/// Short mode labels used in the printed tables.
pub fn mode_label(m: FusionMode) -> &'static str {
    match m {
        FusionMode::Base => "Base",
        FusionMode::Fused => "Fused",
        FusionMode::Gen => "Gen",
        FusionMode::GenFA => "Gen-FA",
        FusionMode::GenFNR => "Gen-FNR",
    }
}
