//! Figure 9: compressed operations `sum(X^2)` over ULA (uncompressed) and
//! CLA (compressed) data, for Airline78-like and Mnist8m-like inputs
//! (DESIGN.md substitution X3).

use super::Scale;
use crate::report::Table;
use crate::time_once;
use fusedml_cla::{compress, ops as cops};
use fusedml_core::spoof::{eval_scalar_program, Instr, Program};
use fusedml_linalg::ops::{self, AggDir, AggOp, UnaryOp};
use fusedml_linalg::{generate, Matrix};

/// `Gen` over CLA: the generated sparse-safe single-input operator runs
/// per *distinct dictionary value*, scaled by counts (paper §5.2: the
/// skeleton calls "the generated operator only for distinct values").
fn gen_over_cla(cm: &fusedml_cla::CompressedMatrix) -> f64 {
    // Generated program: f(a) = a * a.
    let prog = Program {
        instrs: vec![
            Instr::LoadMain { out: 0 },
            Instr::Binary { out: 1, op: fusedml_linalg::ops::BinaryOp::Mult, a: 0, b: 0 },
        ],
        n_regs: 2,
        vreg_lens: vec![],
    };
    let mut regs = vec![0.0f64; 2];
    let side = |_: usize, _: fusedml_core::spoof::SideAccess| 0.0;
    let mut acc = 0.0;
    for vc in cm.group_value_counts() {
        for (v, n) in vc {
            eval_scalar_program(&prog, &mut regs, v, 0.0, &side, &[]);
            acc += regs[1] * n as f64;
        }
    }
    acc
}

fn run_dataset(name: &str, x: &Matrix, reps: usize) {
    let (cm, comp_secs) = time_once(|| compress(x));
    println!(
        "\n[{name}] {}x{}, sparsity {:.4}, CLA ratio {:.2}x (compress {:.2}s)",
        x.rows(),
        x.cols(),
        x.sparsity(),
        cm.compression_ratio(),
        comp_secs
    );
    let mut t = Table::new(
        &format!("Figure 9: sum(X^2) on {name}"),
        &["storage", "Base", "Fused/Gen", "value"],
    );
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    // ULA Base: materialize X^2, then sum (two operators).
    let ula_base = median(
        (0..reps)
            .map(|_| {
                time_once(|| {
                    let sq = ops::unary(x, UnaryOp::Pow2);
                    ops::agg(&sq, AggOp::Sum, AggDir::Full).get(0, 0)
                })
                .1
            })
            .collect(),
    );
    // ULA Fused/Gen: single-pass sum of squares.
    let (vref, _) = time_once(|| ops::agg(x, AggOp::SumSq, AggDir::Full).get(0, 0));
    let ula_gen = median(
        (0..reps)
            .map(|_| time_once(|| ops::agg(x, AggOp::SumSq, AggDir::Full).get(0, 0)).1)
            .collect(),
    );
    t.row(vec!["ULA".into(), Table::secs(ula_base), Table::secs(ula_gen), format!("{vref:.3e}")]);
    // CLA Base/Fused: dictionary-only sum of squares.
    let cla_fused = median((0..reps).map(|_| time_once(|| cops::sum_sq(&cm)).1).collect());
    // CLA Gen: generated operator over distinct values.
    let (vgen, _) = time_once(|| gen_over_cla(&cm));
    let cla_gen = median((0..reps).map(|_| time_once(|| gen_over_cla(&cm)).1).collect());
    assert!(
        fusedml_linalg::approx_eq(vgen, vref, 1e-6),
        "CLA Gen result must match: {vgen} vs {vref}"
    );
    t.row(vec!["CLA".into(), Table::secs(cla_fused), Table::secs(cla_gen), format!("{vgen:.3e}")]);
    t.print();
}

/// Runs Figure 9 on both dataset substitutes.
pub fn run(scale: Scale) {
    let reps = scale.pick(3, 5);
    let (ar, ac) = scale.pick((50_000, 29), (500_000, 29));
    let airline = generate::airline_like(ar, ac, 20, 9);
    run_dataset("Airline78-like (dense, low-cardinality)", &airline, reps);
    let (mr, mc) = scale.pick((20_000, 784), (100_000, 784));
    let mnist = generate::mnist_like(mr, mc, 0.25, 10);
    run_dataset("Mnist8m-like (sparse 0.25)", &mnist, reps);
}
