//! One module per paper experiment (figures 8–13, tables 3–6).

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig8;
pub mod fig9;
pub mod tables;

/// Scale preset: `smoke` is a seconds-long CI guard, `quick` sizes run in
/// seconds to a minute, `full` sizes stress the series further (minutes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Smoke,
    Quick,
    Full,
}

impl Scale {
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Smoke | Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Three-way pick for experiments with a dedicated smoke preset.
    pub fn pick3<T>(self, smoke: T, quick: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
