//! Figure 11: operator compilation and loading — the fast (janino-like)
//! versus heavyweight (javac-like) compiler backends, with and without the
//! plan cache (DESIGN.md substitution X1).

use super::Scale;
use crate::report::Table;
use fusedml_core::codegen::{CodegenOptions, CompilerBackend};
use fusedml_core::explore::explore;
use fusedml_core::opt::{select_plans, CostModel, EnumConfig, SelectionPolicy};
use fusedml_core::plancache::PlanCache;
use fusedml_hop::DagBuilder;

/// Builds a family of `n` structurally distinct fused-operator CPlans
/// (cell chains of varying length/constants), mimicking the operator
/// diversity of the six algorithms.
fn cplan_family(n: usize) -> Vec<fusedml_core::cplan::CPlan> {
    let mut out = Vec::new();
    for i in 0..n {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let mut cur = b.mult(x, y);
        for j in 0..(i % 7) {
            let c = b.lit(1.0 + (i * 31 + j) as f64);
            cur = b.add(cur, c);
        }
        let s = b.sum(cur);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let sel = select_plans(
            &dag,
            &memo,
            SelectionPolicy::CostBased(EnumConfig::default()),
            &CostModel::default(),
        );
        for op in &sel.operators {
            if let Ok(cp) = fusedml_core::cplan::construct(&dag, op) {
                out.push(cp);
            }
        }
    }
    out
}

/// Runs the 2×2 comparison: backend × plan cache, over repeated
/// compilations of the operator family (as dynamic recompilation would).
pub fn run(scale: Scale) {
    let family = cplan_family(scale.pick(30, 60));
    let rounds = scale.pick(20, 50);
    let mut t = Table::new(
        &format!(
            "Figure 11: compilation of {} distinct operators x {} recompilations",
            family.len(),
            rounds
        ),
        &["config", "compile time", "hits", "misses"],
    );
    for (backend, bname) in [(CompilerBackend::Janino, "janino"), (CompilerBackend::Javac, "javac")]
    {
        for (cache_on, cname) in [(false, "no cache"), (true, "plan cache")] {
            let cache = PlanCache::new();
            cache.set_enabled(cache_on);
            let opts = CodegenOptions { backend, ..Default::default() };
            let t0 = std::time::Instant::now();
            for _ in 0..rounds {
                for cp in &family {
                    let _ = cache.get_or_compile(cp, &opts);
                }
            }
            let secs = t0.elapsed().as_secs_f64();
            let (h, m) = cache.stats();
            t.row(vec![
                format!("{bname}, {cname}"),
                Table::secs(secs),
                h.to_string(),
                m.to_string(),
            ]);
        }
    }
    t.print();
}
