//! Figure 10: impact of the instruction footprint — `sum(f(X/rowSums(X)))`
//! with `f` a sequence of `n` row operations `X ⊙ i`, comparing the default
//! primitive-calling operators (`Gen`) against inlined per-element code
//! (`Gen inlined`), which falls off a cliff once the code size exceeds the
//! compiler's budget (DESIGN.md substitution X4).
//!
//! A second table reports the *memory* footprint of the same
//! multi-intermediate chain under the scheduled executor: tracked peak
//! resident bytes (frees at last use + pooled buffers) against the
//! hold-everything bytes the seed runtime kept, plus buffer-pool hit rates
//! and scheduler parallelism. In `--smoke` mode the Base-mode reduction is a
//! CI regression gate (must stay ≥ 2×).

use super::Scale;
use crate::report::Table;
use fusedml_core::codegen::CodegenOptions;
use fusedml_hop::interp::Bindings;
use fusedml_hop::DagBuilder;
use fusedml_linalg::generate;
use fusedml_runtime::{Engine, FusionMode};
use std::time::Instant;

fn footprint_dag(rows: usize, cols: usize, n_ops: usize) -> fusedml_hop::HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let rs = b.row_sums(x);
    let mut cur = b.div(x, rs);
    for i in 0..n_ops {
        let c = b.lit(1.0 + (i as f64) * 1e-3);
        cur = b.mult(cur, c);
    }
    let s = b.sum(cur);
    b.build(vec![s])
}

/// One footprint measurement: executes the chain DAG under `mode` and
/// returns `(peak, hold_everything, reduction, freed_early, hit_rate,
/// parallel_ops)` from the scheduler counters.
pub fn measure_footprint(
    mode: FusionMode,
    rows: usize,
    cols: usize,
    n_ops: usize,
) -> (usize, usize, f64, usize, f64, usize) {
    let dag = footprint_dag(rows, cols, n_ops);
    let mut bindings = Bindings::new();
    bindings.insert("X".to_string(), generate::rand_dense(rows, cols, 0.5, 2.0, 1));
    let exec = Engine::new(mode);
    let _ = exec.execute(&dag, &bindings); // cold run compiles + fills pool
    exec.stats().reset();
    let _ = exec.execute(&dag, &bindings); // warm run: steady-state numbers
    let s = exec.stats().scheduler_snapshot();
    (
        s.peak_bytes,
        s.resident_all_bytes,
        s.footprint_reduction(),
        s.bytes_freed_early,
        s.pool_hit_rate(),
        s.parallel_ops,
    )
}

fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// The scheduler/buffer-pool footprint table (and the smoke-mode CI gate).
fn run_footprint(scale: Scale) {
    let (rows, cols) = scale.pick3((2_000, 256), (10_000, 256), (100_000, 1_000));
    let mut t = Table::new(
        &format!("Figure 10 (runtime footprint): chain on X {rows}x{cols}, warm pool"),
        &[
            "mode",
            "#row ops",
            "peak MB",
            "hold-all MB",
            "reduction",
            "freed MB",
            "pool hit%",
            "par ops",
        ],
    );
    let mut base_reductions: Vec<f64> = Vec::new();
    for n_ops in scale.pick3(vec![8usize], vec![8, 32, 64], vec![8, 32, 64, 128]) {
        for mode in [FusionMode::Base, FusionMode::Gen] {
            let (peak, all, red, freed, hit, par) = measure_footprint(mode, rows, cols, n_ops);
            if mode == FusionMode::Base {
                base_reductions.push(red);
            }
            t.row(vec![
                format!("{mode:?}"),
                n_ops.to_string(),
                mb(peak),
                mb(all),
                format!("{red:.2}x"),
                mb(freed),
                format!("{:.0}%", hit * 100.0),
                par.to_string(),
            ]);
        }
    }
    t.print();
    if scale == Scale::Smoke {
        // CI regression gate: the liveness-aware peak of the
        // multi-intermediate chain must stay ≥ 2× below hold-everything.
        for red in base_reductions {
            assert!(red >= 2.0, "fig10 footprint gate: Base reduction {red:.2}x < 2x");
        }
        println!("fig10 footprint gate: ok (Base reduction >= 2x)");
    }
}

/// Runs the sweep; returns rows of (n_ops, gen_s, inlined_s, code_size).
pub fn run(scale: Scale) {
    run_footprint(scale);
    let (rows, cols) = scale.pick3((2_000, 256), (10_000, 256), (100_000, 1_000));
    let sweep: Vec<usize> = scale.pick3(
        vec![8, 64],
        vec![1, 2, 4, 8, 16, 32, 48, 64, 96, 128],
        vec![1, 2, 4, 8, 16, 32, 48, 64, 96, 128],
    );
    let reps = scale.pick(2, 3);
    let budget = 8192;
    let x = generate::rand_dense(rows, cols, 0.5, 2.0, 1);
    let mut bindings = Bindings::new();
    bindings.insert("X".to_string(), x);
    let mut t = Table::new(
        &format!("Figure 10: sum(f(X/rowSums(X))), X {rows}x{cols}, code budget {budget}"),
        &["#row ops", "Gen", "Gen inlined", "inlined code size", "mode"],
    );
    for n_ops in sweep {
        let dag = footprint_dag(rows, cols, n_ops);
        let time_with = |opts: CodegenOptions| -> (f64, usize, String) {
            let exec = Engine::builder(FusionMode::Gen).codegen_options(opts).build();
            let _ = exec.execute(&dag, &bindings); // warm-up/compile
            let plan = exec.plan_for(&dag);
            let code = plan.operators.iter().map(|o| o.op.code_size).max().unwrap_or(0);
            let mode = plan
                .operators
                .iter()
                .filter_map(|o| match &o.op.spec {
                    fusedml_core::spoof::FusedSpec::Row(r) => Some(format!("{:?}", r.exec_mode)),
                    _ => None,
                })
                .next()
                .unwrap_or_else(|| "-".into());
            let mut times: Vec<f64> = (0..reps)
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = exec.execute(&dag, &bindings);
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            (times[times.len() / 2], code, mode)
        };
        let (gen_s, _, _) =
            time_with(CodegenOptions { code_size_budget: budget, ..Default::default() });
        let (inl_s, code, mode) = time_with(CodegenOptions {
            inline_primitives: true,
            code_size_budget: budget,
            ..Default::default()
        });
        t.row(vec![
            n_ops.to_string(),
            Table::secs(gen_s),
            Table::secs(inl_s),
            code.to_string(),
            mode,
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the scheduled executor: tracked peak memory on
    /// the multi-intermediate chain drops ≥ 2× versus hold-everything.
    #[test]
    fn footprint_reduction_gate_holds() {
        let (peak, all, red, freed, _hit, _par) = measure_footprint(FusionMode::Base, 500, 128, 12);
        assert!(red >= 2.0, "reduction {red:.2}x (peak {peak}, hold-all {all})");
        assert!(freed > 0, "chain intermediates must free early");
    }

    /// Under Gen the chain fuses, so even hold-everything is small — but the
    /// tracked peak must still never exceed it.
    #[test]
    fn gen_peak_bounded_by_hold_everything() {
        let (peak, all, _red, _freed, _hit, _par) =
            measure_footprint(FusionMode::Gen, 500, 128, 12);
        assert!(peak <= all);
    }
}
