//! Figure 10: impact of the instruction footprint — `sum(f(X/rowSums(X)))`
//! with `f` a sequence of `n` row operations `X ⊙ i`, comparing the default
//! primitive-calling operators (`Gen`) against inlined per-element code
//! (`Gen inlined`), which falls off a cliff once the code size exceeds the
//! compiler's budget (DESIGN.md substitution X4).

use super::Scale;
use crate::report::Table;
use fusedml_core::codegen::CodegenOptions;
use fusedml_hop::interp::Bindings;
use fusedml_hop::DagBuilder;
use fusedml_linalg::generate;
use fusedml_runtime::{Executor, FusionMode};
use std::time::Instant;

fn footprint_dag(rows: usize, cols: usize, n_ops: usize) -> fusedml_hop::HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let rs = b.row_sums(x);
    let mut cur = b.div(x, rs);
    for i in 0..n_ops {
        let c = b.lit(1.0 + (i as f64) * 1e-3);
        cur = b.mult(cur, c);
    }
    let s = b.sum(cur);
    b.build(vec![s])
}

/// Runs the sweep; returns rows of (n_ops, gen_s, inlined_s, code_size).
pub fn run(scale: Scale) {
    let (rows, cols) = scale.pick((10_000, 256), (100_000, 1_000));
    let reps = scale.pick(2, 3);
    let budget = 8192;
    let x = generate::rand_dense(rows, cols, 0.5, 2.0, 1);
    let mut bindings = Bindings::new();
    bindings.insert("X".to_string(), x);
    let mut t = Table::new(
        &format!("Figure 10: sum(f(X/rowSums(X))), X {rows}x{cols}, code budget {budget}"),
        &["#row ops", "Gen", "Gen inlined", "inlined code size", "mode"],
    );
    for n_ops in [1usize, 2, 4, 8, 16, 32, 48, 64, 96, 128] {
        let dag = footprint_dag(rows, cols, n_ops);
        let time_with = |opts: CodegenOptions| -> (f64, usize, String) {
            let mut exec = Executor::new(FusionMode::Gen);
            exec.optimizer.codegen = opts;
            let _ = exec.execute(&dag, &bindings); // warm-up/compile
            let plan = exec.plan_for(&dag);
            let code = plan.operators.iter().map(|o| o.op.code_size).max().unwrap_or(0);
            let mode = plan
                .operators
                .iter()
                .filter_map(|o| match &o.op.spec {
                    fusedml_core::spoof::FusedSpec::Row(r) => Some(format!("{:?}", r.exec_mode)),
                    _ => None,
                })
                .next()
                .unwrap_or_else(|| "-".into());
            let mut times: Vec<f64> = (0..reps)
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = exec.execute(&dag, &bindings);
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            (times[times.len() / 2], code, mode)
        };
        let (gen_s, _, _) =
            time_with(CodegenOptions { code_size_budget: budget, ..Default::default() });
        let (inl_s, code, mode) = time_with(CodegenOptions {
            inline_primitives: true,
            code_size_budget: budget,
            ..Default::default()
        });
        t.row(vec![
            n_ops.to_string(),
            Table::secs(gen_s),
            Table::secs(inl_s),
            code.to_string(),
            mode,
        ]);
    }
    t.print();
}
