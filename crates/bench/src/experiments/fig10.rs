//! Figure 10: impact of the instruction footprint — `sum(f(X/rowSums(X)))`
//! with `f` a sequence of `n` row operations `X ⊙ i`, comparing the default
//! primitive-calling operators (`Gen`) against inlined per-element code
//! (`Gen inlined`), which falls off a cliff once the code size exceeds the
//! compiler's budget (DESIGN.md substitution X4).
//!
//! A second table reports the *memory* footprint of the same
//! multi-intermediate chain under the scheduled executor: tracked peak
//! resident bytes (frees at last use + pooled buffers) against the
//! hold-everything bytes the seed runtime kept, plus buffer-pool hit rates
//! and scheduler parallelism. In `--smoke` mode the Base-mode reduction is a
//! CI regression gate (must stay ≥ 2×).
//!
//! A third table exercises the *out-of-core* path: a chain whose live
//! working set is ~4× the engine's memory budget, forcing the spill tier to
//! evict farthest-next-use anchors and fault them back during the fold. In
//! `--smoke` mode this is a second CI gate: the bounded run must keep its
//! tracked peak within the budget, actually spill, and finish within 3× of
//! the unbounded run.

use super::Scale;
use crate::report::Table;
use fusedml_core::codegen::CodegenOptions;
use fusedml_hop::interp::Bindings;
use fusedml_hop::DagBuilder;
use fusedml_linalg::generate;
use fusedml_runtime::{Engine, FusionMode};
use std::time::Instant;

fn footprint_dag(rows: usize, cols: usize, n_ops: usize) -> fusedml_hop::HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let rs = b.row_sums(x);
    let mut cur = b.div(x, rs);
    for i in 0..n_ops {
        let c = b.lit(1.0 + (i as f64) * 1e-3);
        cur = b.mult(cur, c);
    }
    let s = b.sum(cur);
    b.build(vec![s])
}

/// One footprint measurement: executes the chain DAG under `mode` and
/// returns `(peak, hold_everything, reduction, freed_early, hit_rate,
/// parallel_ops)` from the scheduler counters.
pub fn measure_footprint(
    mode: FusionMode,
    rows: usize,
    cols: usize,
    n_ops: usize,
) -> (usize, usize, f64, usize, f64, usize) {
    let dag = footprint_dag(rows, cols, n_ops);
    let mut bindings = Bindings::new();
    bindings.insert("X".to_string(), generate::rand_dense(rows, cols, 0.5, 2.0, 1));
    let exec = Engine::new(mode);
    let _ = exec.execute(&dag, &bindings); // cold run compiles + fills pool
    exec.stats().reset();
    let _ = exec.execute(&dag, &bindings); // warm run: steady-state numbers
    let s = exec.stats().scheduler_snapshot();
    (
        s.peak_bytes,
        s.resident_all_bytes,
        s.footprint_reduction(),
        s.bytes_freed_early,
        s.pool_hit_rate(),
        s.parallel_ops,
    )
}

fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// The scheduler/buffer-pool footprint table (and the smoke-mode CI gate).
fn run_footprint(scale: Scale) {
    let (rows, cols) = scale.pick3((2_000, 256), (10_000, 256), (100_000, 1_000));
    let mut t = Table::new(
        &format!("Figure 10 (runtime footprint): chain on X {rows}x{cols}, warm pool"),
        &[
            "mode",
            "#row ops",
            "peak MB",
            "hold-all MB",
            "reduction",
            "freed MB",
            "pool hit%",
            "par ops",
        ],
    );
    let mut base_reductions: Vec<f64> = Vec::new();
    for n_ops in scale.pick3(vec![8usize], vec![8, 32, 64], vec![8, 32, 64, 128]) {
        for mode in [FusionMode::Base, FusionMode::Gen] {
            let (peak, all, red, freed, hit, par) = measure_footprint(mode, rows, cols, n_ops);
            if mode == FusionMode::Base {
                base_reductions.push(red);
            }
            t.row(vec![
                format!("{mode:?}"),
                n_ops.to_string(),
                mb(peak),
                mb(all),
                format!("{red:.2}x"),
                mb(freed),
                format!("{:.0}%", hit * 100.0),
                par.to_string(),
            ]);
        }
    }
    t.print();
    if scale == Scale::Smoke {
        // CI regression gate: the liveness-aware peak of the
        // multi-intermediate chain must stay ≥ 2× below hold-everything.
        for red in base_reductions {
            assert!(red >= 2.0, "fig10 footprint gate: Base reduction {red:.2}x < 2x");
        }
        println!("fig10 footprint gate: ok (Base reduction >= 2x)");
    }
}

/// A workload whose *minimum possible* working set exceeds any fraction of
/// its size — no execution order can dodge the spill tier. A forced
/// sequential chain `a_{i+1} = exp(a_i)` is consumed in *mirror* order
/// (`sum(a_i ⊙ a_{k-1-i})`): while the first half of the chain is being
/// produced, none of its mirror partners exist yet, so all of it must stay
/// live — k/2 full-size values no scheduler can free early. `exp` keeps the
/// workload compute-bound, which is what makes the ≤ 3× out-of-core
/// slowdown gate meaningful rather than a measure of disk bandwidth.
fn ooc_dag(rows: usize, cols: usize, k: usize) -> fusedml_hop::HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let neg = b.lit(-1.0);
    let mut anchors = Vec::with_capacity(k);
    let mut cur = x;
    for _ in 0..k {
        // a ← exp(-a) keeps the chain bounded in (0, 1): no overflow and no
        // denormal slowdowns over an arbitrary chain depth.
        let m = b.mult(cur, neg);
        cur = b.exp(m);
        anchors.push(cur);
    }
    let mut total = None;
    for i in 0..k / 2 {
        let m = b.mult(anchors[i], anchors[k - 1 - i]);
        let p = b.sum(m);
        total = Some(match total {
            None => p,
            Some(t) => b.add(t, p),
        });
    }
    b.build(vec![total.expect("k >= 2")])
}

/// Median wall time plus the warm-run scheduler snapshot for one engine on
/// the out-of-core chain.
fn measure_ooc(
    exec: &Engine,
    dag: &fusedml_hop::HopDag,
    bindings: &Bindings,
    reps: usize,
) -> (f64, fusedml_runtime::SchedSnapshot) {
    let _ = exec.execute(dag, bindings); // cold run compiles + fills pool
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            exec.stats().reset();
            let t0 = Instant::now();
            let _ = exec.execute(dag, bindings);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let snap = exec.stats().scheduler_snapshot();
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], snap)
}

/// The out-of-core panel (and the smoke-mode CI gate): working set ≈ 4× the
/// budget, single worker so the budget reservation is exact.
fn run_out_of_core(scale: Scale) {
    let (rows, cols, k) = scale.pick3((1_000, 256, 28), (4_000, 256, 28), (10_000, 512, 28));
    let val_bytes = 8 * rows * cols;
    // The unavoidable working set is the first half of the chain plus the
    // in-flight pair (~k/2 + 2 values); the budget is a quarter of it. The
    // 4 KiB of headroom covers the scalar slots (fold partials and the
    // literal), which sit below `MIN_SPILL_BYTES` and can never evict.
    let budget = (k / 2 + 2) * val_bytes / 4 + 4096;
    let reps = scale.pick(3, 5);
    let dag = ooc_dag(rows, cols, k);
    let mut bindings = Bindings::new();
    bindings.insert("X".to_string(), generate::rand_dense(rows, cols, 0.0, 0.5, 2));
    let loose = Engine::builder(FusionMode::Base).workers(1).build();
    let tight = Engine::builder(FusionMode::Base).memory_budget(budget).workers(1).build();
    let (loose_s, loose_snap) = measure_ooc(&loose, &dag, &bindings, reps);
    let (tight_s, tight_snap) = measure_ooc(&tight, &dag, &bindings, reps);
    let mut t = Table::new(
        &format!(
            "Figure 10 (out-of-core): mirror-paired chain of {k} on X {rows}x{cols}, budget {} MB",
            mb(budget)
        ),
        &[
            "engine",
            "peak MB",
            "spilled MB",
            "reloaded MB",
            "faults",
            "prefetch",
            "stall ms",
            "time",
        ],
    );
    for (name, s, secs) in [("unbounded", &loose_snap, loose_s), ("budgeted", &tight_snap, tight_s)]
    {
        t.row(vec![
            name.to_string(),
            mb(s.peak_bytes),
            mb(s.spilled_bytes),
            mb(s.reloaded_bytes),
            s.spill_faults.to_string(),
            s.prefetch_hits.to_string(),
            format!("{:.1}", s.spill_stall_us as f64 / 1e3),
            Table::secs(secs),
        ]);
    }
    t.print();
    if scale == Scale::Smoke {
        assert_eq!(loose_snap.spilled_bytes, 0, "fig10 ooc gate: unbounded run must not spill");
        assert!(tight_snap.spilled_bytes > 0, "fig10 ooc gate: 4x working set must spill");
        assert!(
            tight_snap.peak_bytes <= budget,
            "fig10 ooc gate: peak {} exceeds budget {}",
            tight_snap.peak_bytes,
            budget
        );
        let ratio = tight_s / loose_s.max(1e-3);
        assert!(
            ratio <= 3.0,
            "fig10 ooc gate: out-of-core slowdown {ratio:.2}x > 3x (tight {tight_s:.4}s vs loose {loose_s:.4}s)"
        );
        println!("fig10 ooc gate: ok (peak <= budget, spills > 0, slowdown {ratio:.2}x <= 3x)");
    }
}

/// Runs the sweep; returns rows of (n_ops, gen_s, inlined_s, code_size).
pub fn run(scale: Scale) {
    run_footprint(scale);
    run_out_of_core(scale);
    let (rows, cols) = scale.pick3((2_000, 256), (10_000, 256), (100_000, 1_000));
    let sweep: Vec<usize> = scale.pick3(
        vec![8, 64],
        vec![1, 2, 4, 8, 16, 32, 48, 64, 96, 128],
        vec![1, 2, 4, 8, 16, 32, 48, 64, 96, 128],
    );
    let reps = scale.pick(2, 3);
    let budget = 8192;
    let x = generate::rand_dense(rows, cols, 0.5, 2.0, 1);
    let mut bindings = Bindings::new();
    bindings.insert("X".to_string(), x);
    let mut t = Table::new(
        &format!("Figure 10: sum(f(X/rowSums(X))), X {rows}x{cols}, code budget {budget}"),
        &["#row ops", "Gen", "Gen inlined", "inlined code size", "mode"],
    );
    for n_ops in sweep {
        let dag = footprint_dag(rows, cols, n_ops);
        let time_with = |opts: CodegenOptions| -> (f64, usize, String) {
            let exec = Engine::builder(FusionMode::Gen).codegen_options(opts).build();
            let _ = exec.execute(&dag, &bindings); // warm-up/compile
            let plan = exec.plan_for(&dag);
            let code = plan.operators.iter().map(|o| o.op.code_size).max().unwrap_or(0);
            let mode = plan
                .operators
                .iter()
                .filter_map(|o| match &o.op.spec {
                    fusedml_core::spoof::FusedSpec::Row(r) => Some(format!("{:?}", r.exec_mode)),
                    _ => None,
                })
                .next()
                .unwrap_or_else(|| "-".into());
            let mut times: Vec<f64> = (0..reps)
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = exec.execute(&dag, &bindings);
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            (times[times.len() / 2], code, mode)
        };
        let (gen_s, _, _) =
            time_with(CodegenOptions { code_size_budget: budget, ..Default::default() });
        let (inl_s, code, mode) = time_with(CodegenOptions {
            inline_primitives: true,
            code_size_budget: budget,
            ..Default::default()
        });
        t.row(vec![
            n_ops.to_string(),
            Table::secs(gen_s),
            Table::secs(inl_s),
            code.to_string(),
            mode,
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the scheduled executor: tracked peak memory on
    /// the multi-intermediate chain drops ≥ 2× versus hold-everything.
    #[test]
    fn footprint_reduction_gate_holds() {
        let (peak, all, red, freed, _hit, _par) = measure_footprint(FusionMode::Base, 500, 128, 12);
        assert!(red >= 2.0, "reduction {red:.2}x (peak {peak}, hold-all {all})");
        assert!(freed > 0, "chain intermediates must free early");
    }

    /// Under Gen the chain fuses, so even hold-everything is small — but the
    /// tracked peak must still never exceed it.
    #[test]
    fn gen_peak_bounded_by_hold_everything() {
        let (peak, all, _red, _freed, _hit, _par) =
            measure_footprint(FusionMode::Gen, 500, 128, 12);
        assert!(peak <= all);
    }

    /// The out-of-core gate conditions hold at test size: a working set 4×
    /// the budget spills, stays within the budget, and reloads everything.
    #[test]
    fn ooc_chain_stays_within_budget() {
        let (rows, cols, k) = (300, 128, 28);
        let budget = (k / 2 + 2) * 8 * rows * cols / 4 + 4096; // scalar-slot headroom
        let dag = ooc_dag(rows, cols, k);
        let mut bindings = Bindings::new();
        bindings.insert("X".to_string(), generate::rand_dense(rows, cols, 0.0, 0.5, 2));
        let exec = Engine::builder(FusionMode::Base).memory_budget(budget).workers(1).build();
        let (_, snap) = measure_ooc(&exec, &dag, &bindings, 1);
        assert!(snap.spilled_bytes > 0, "4x working set must spill");
        assert!(snap.peak_bytes <= budget, "peak {} > budget {budget}", snap.peak_bytes);
        assert_eq!(snap.spilled_bytes, snap.reloaded_bytes, "every anchor faults back");
    }
}
