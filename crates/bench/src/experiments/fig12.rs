//! Figure 12: plan enumeration and pruning — the number of evaluated plans
//! per algorithm under (all) joint enumeration without partitioning,
//! (partition) independent partitions, and (partition+prune) with
//! cost-based and structural pruning.

use crate::report::Table;
use fusedml_core::explore::explore;
use fusedml_core::opt::{cost, mpskip_enum, partitions, CostModel, EnumConfig};
use fusedml_hop::HopDag;

/// Representative per-iteration DAGs per algorithm (the fusion-relevant
/// inner-loop bodies).
pub fn algorithm_dags() -> Vec<(&'static str, Vec<HopDag>)> {
    use fusedml_algos as algos;
    let _ = &algos::common::Algorithm::L2svm;
    // Reuse the bench fig8 builders plus algorithm-shaped DAGs.
    let l2svm = {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 100_000, 10, 1.0);
        let y = b.read("y", 100_000, 1, 1.0);
        let w = b.read("w", 10, 1, 1.0);
        let xw = b.mm(x, w);
        let yxw = b.mult(y, xw);
        let one = b.lit(1.0);
        let out = b.sub(one, yxw);
        let zero = b.lit(0.0);
        let ind = b.gt(out, zero);
        let mask = b.mult(ind, out);
        let sq = b.sq(mask);
        let obj = b.sum(sq);
        let d = b.mult(y, mask);
        let xt = b.t(x);
        let g = b.mm(xt, d);
        vec![b.build(vec![obj, g])]
    };
    let mlogreg = {
        let (n, m, k) = (100_000, 10, 4);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let p = b.read("P", n, k + 1, 1.0);
        let v = b.read("v", m, k, 1.0);
        let xv = b.mm(x, v);
        let pk = b.rix(p, None, Some((0, k)));
        let q = b.mult(pk, xv);
        let rs = b.row_sums(q);
        let prs = b.mult(pk, rs);
        let diff = b.sub(q, prs);
        let xt = b.t(x);
        let h = b.mm(xt, diff);
        vec![b.build(vec![h])]
    };
    let glm = {
        let (n, m) = (100_000, 10);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let y = b.read("y", n, 1, 1.0);
        let beta = b.read("b", m, 1, 1.0);
        let eta = b.mm(x, beta);
        let mu = b.sigmoid(eta);
        let w = b.unary(fusedml_linalg::ops::UnaryOp::Sprop, mu);
        let resid = b.sub(y, mu);
        let xt = b.t(x);
        let g = b.mm(xt, resid);
        let wsum = b.sum(w);
        vec![b.build(vec![g, wsum])]
    };
    let kmeans = {
        let (n, m, k) = (100_000, 10, 5);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let c = b.read("C", k, m, 1.0);
        let ct = b.t(c);
        let xc = b.mm(x, ct);
        let neg2 = b.lit(-2.0);
        let xc2 = b.mult(xc, neg2);
        let csq = b.sq(c);
        let cn = b.agg(fusedml_linalg::ops::AggOp::Sum, fusedml_linalg::ops::AggDir::Row, csq);
        let cnt = b.t(cn);
        let d = b.add(xc2, cnt);
        let dmin = b.agg(fusedml_linalg::ops::AggOp::Min, fusedml_linalg::ops::AggDir::Row, d);
        let a = b.binary(fusedml_linalg::ops::BinaryOp::Eq, d, dmin);
        let wcss = b.sum(dmin);
        let at = b.t(a);
        let num = b.mm(at, x);
        let counts = b.col_sums(a);
        vec![b.build(vec![wcss, num, counts])]
    };
    let alscg = {
        let (n, m, r) = (10_000, 10_000, 20);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 0.01);
        let u = b.read("U", n, r, 1.0);
        let v = b.read("V", m, r, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let zero = b.lit(0.0);
        let mask = b.neq(x, zero);
        let w = b.mult(mask, uvt);
        let wv = b.mm(w, v);
        let xv = b.mm(x, v);
        let diff = b.sub(wv, xv);
        let sq = b.sq(uvt);
        let msq = b.mult(mask, sq);
        let t1 = b.sum(msq);
        let xp = b.mult(x, uvt);
        let t2 = b.sum(xp);
        vec![b.build(vec![diff, t1, t2])]
    };
    let autoenc = {
        let (bsz, m, h1, h2) = (512, 100, 50, 2);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("Xb", bsz, m, 1.0);
        let w1 = b.read("W1", m, h1, 1.0);
        let w2 = b.read("W2", h1, h2, 1.0);
        let a1 = b.mm(x, w1);
        let z1 = b.sigmoid(a1);
        let a2 = b.mm(z1, w2);
        let z2 = b.sigmoid(a2);
        let s2 = b.unary(fusedml_linalg::ops::UnaryOp::Sprop, z2);
        let d2 = b.mult(z2, s2);
        let z1t = b.t(z1);
        let dw2 = b.mm(z1t, d2);
        let w2t = b.t(w2);
        let dz1 = b.mm(d2, w2t);
        let s1 = b.unary(fusedml_linalg::ops::UnaryOp::Sprop, z1);
        let d1 = b.mult(dz1, s1);
        let xt = b.t(x);
        let dw1 = b.mm(xt, d1);
        vec![b.build(vec![dw1, dw2])]
    };
    vec![
        ("L2SVM", l2svm),
        ("MLogreg", mlogreg),
        ("GLM", glm),
        ("KMeans", kmeans),
        ("ALS-CG", alscg),
        ("AutoEncoder", autoenc),
    ]
}

/// Runs the enumeration-count comparison.
pub fn run() {
    let mut t = Table::new(
        "Figure 12: # of evaluated plans (all vs partition vs partition+prune)",
        &["algorithm", "all (2^Σ|M'|)", "partition (Σ2^|M'i|)", "partition+prune"],
    );
    let model = CostModel::default();
    for (name, dags) in algorithm_dags() {
        let mut all: f64 = 0.0;
        let mut part_count: f64 = 0.0;
        let mut pruned: u64 = 0;
        for dag in &dags {
            let memo = explore(dag);
            let parts = partitions(dag, &memo);
            let compute = cost::compute_costs(dag);
            let total_points: usize = parts.iter().map(|p| p.interesting.len()).sum();
            all += 2f64.powi(total_points as i32);
            for p in &parts {
                part_count += 2f64.powi(p.interesting.len() as i32);
                let r = mpskip_enum(dag, &memo, p, &compute, &model, &EnumConfig::default());
                pruned += r.evaluated;
            }
        }
        t.row(vec![
            name.to_string(),
            format!("{all:.0}"),
            format!("{part_count:.0}"),
            pruned.to_string(),
        ]);
    }
    t.print();
}
