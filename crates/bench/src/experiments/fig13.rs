//! Figure 13: hybrid algorithms — MLogreg and KMeans runtime as the number
//! of classes/centroids k grows (memory-bound → compute-bound transition,
//! with intermediate sizes n×k growing with k).

use super::Scale;
use crate::report::Table;
use crate::{mode_label, MODES};
use fusedml_algos::{kmeans, mlogreg};
use fusedml_runtime::Engine;

pub fn run(scale: Scale) {
    let (n, m) = scale.pick((20_000, 100), (200_000, 100));
    let ks = [2usize, 4, 8, 16, 32];

    let mut t = Table::new(
        &format!("Figure 13(a): MLogreg runtime vs #classes (X {n}x{m})"),
        &["k", "Base", "Fused", "Gen", "Gen-FA", "Gen-FNR"],
    );
    for &k in &ks {
        let (x, y) = mlogreg::synthetic_data(n, m, k, 1.0, 7);
        let cfg =
            mlogreg::MLogregConfig { classes: k, max_outer: 2, max_inner: 3, ..Default::default() };
        let mut row = vec![k.to_string()];
        for mode in MODES {
            let r = mlogreg::run(&Engine::new(mode), &x, &y, &cfg);
            row.push(Table::secs(r.seconds));
            let _ = mode_label(mode);
        }
        t.row(row);
    }
    t.print();

    let mut t = Table::new(
        &format!("Figure 13(b): KMeans runtime vs #centroids (X {n}x{m})"),
        &["k", "Base", "Fused", "Gen", "Gen-FA", "Gen-FNR"],
    );
    for &k in &ks {
        let x = kmeans::synthetic_data(n, m, 1.0, 8);
        let cfg = kmeans::KMeansConfig { k, max_iter: 3, ..Default::default() };
        let mut row = vec![k.to_string()];
        for mode in MODES {
            let r = kmeans::run(&Engine::new(mode), &x, &cfg);
            row.push(Table::secs(r.seconds));
        }
        t.row(row);
    }
    t.print();
}
