//! Figure 8: operations performance of the example patterns
//! (Cell, MAgg, Row, Outer) over dense and sparse data.

use super::Scale;
use crate::report::Table;
use crate::{mode_label, time_dag_stats, MODES};
use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::{generate, Matrix};
use fusedml_runtime::FusionMode;

/// One measured point of a Figure 8 panel, as serialized to
/// `BENCH_fig8.json` (no external JSON dependency — fields are written by
/// hand in the private `write_json` helper).
#[derive(Clone, Debug)]
pub struct PanelPoint {
    /// Panel caption (e.g. `"fig8a"`).
    pub panel: String,
    /// The swept x value: `cells/input` for size sweeps, sparsity for 8(h).
    pub x: String,
    /// Execution mode label (`Base`, `Fused`, `Gen`, …).
    pub mode: String,
    /// Median wall-clock seconds.
    pub secs: f64,
    /// Fused operators executed in one run.
    pub fused_ops: usize,
    /// Fused operators that ran as specialized static kernels.
    pub mono_ops: usize,
    /// Fused operators interpreted by the generic tile body.
    pub interp_fused_ops: usize,
}

/// Writes the collected panel points as `BENCH_fig8.json` in the current
/// directory. The CI smoke gate parses this file and requires every `Gen`
/// point to report `mono_ops > 0` with `interp_fused_ops == 0`.
fn write_json(scale: Scale, points: &[PanelPoint]) {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"fig8\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"panel\": \"{}\", \"x\": \"{}\", \"mode\": \"{}\",              \"secs\": {:.6}, \"fused_ops\": {}, \"mono_ops\": {},              \"interp_fused_ops\": {}}}{}\n",
            p.panel,
            p.x,
            p.mode,
            p.secs,
            p.fused_ops,
            p.mono_ops,
            p.interp_fused_ops,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write("BENCH_fig8.json", &out) {
        Ok(()) => println!("wrote BENCH_fig8.json ({} points)", points.len()),
        Err(e) => eprintln!("could not write BENCH_fig8.json: {e}"),
    }
}

fn bind(pairs: Vec<(&str, Matrix)>) -> Bindings {
    pairs.into_iter().map(|(n, m)| (n.to_string(), m)).collect()
}

/// `sum(X ⊙ Y ⊙ Z)` — Fig. 8(a)/(b).
pub fn cell_dag(rows: usize, cols: usize, sp: f64) -> (HopDag, Vec<&'static str>) {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, sp);
    let y = b.read("Y", rows, cols, sp);
    let z = b.read("Z", rows, cols, sp);
    let m1 = b.mult(x, y);
    let m2 = b.mult(m1, z);
    let s = b.sum(m2);
    (b.build(vec![s]), vec!["X", "Y", "Z"])
}

/// `sum(X ⊙ Y), sum(X ⊙ Z)` — Fig. 8(c)/(d).
pub fn magg_dag(rows: usize, cols: usize, sp: f64) -> (HopDag, Vec<&'static str>) {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, sp);
    let y = b.read("Y", rows, cols, sp);
    let z = b.read("Z", rows, cols, sp);
    let a = b.mult(x, y);
    let c = b.mult(x, z);
    let s1 = b.sum(a);
    let s2 = b.sum(c);
    (b.build(vec![s1, s2]), vec!["X", "Y", "Z"])
}

/// `t(X) %*% (X %*% v)` — Fig. 8(e)/(f); `V` with k columns for Fig. 8(g).
pub fn row_dag(rows: usize, cols: usize, k: usize, sp: f64) -> (HopDag, Vec<&'static str>) {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, sp);
    let v = b.read("v", cols, k, 1.0);
    let xv = b.mm(x, v);
    let xt = b.t(x);
    let out = b.mm(xt, xv);
    (b.build(vec![out]), vec!["X", "v"])
}

/// `t(X) %*% (w ⊙ (X %*% v))` — the mlogreg/GLM inner-loop shape over a
/// sparse X: exercises the sparse-aware Row band execution (dot and axpy
/// over row non-zeros, no densification of the main or sides).
pub fn row_sparse_dag(rows: usize, cols: usize, sp: f64) -> (HopDag, Vec<&'static str>) {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, sp);
    let v = b.read("v", cols, 1, 1.0);
    let w = b.read("w", rows, 1, 1.0);
    let xv = b.mm(x, v);
    let wxv = b.mult(w, xv);
    let xt = b.t(x);
    let out = b.mm(xt, wxv);
    (b.build(vec![out]), vec!["X", "v", "w"])
}

/// `sum(X ⊙ log(U V^T + 1e-15))` — Fig. 8(h).
pub fn outer_dag(n: usize, m: usize, rank: usize, sp: f64) -> (HopDag, Vec<&'static str>) {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let u = b.read("U", n, rank, 1.0);
    let v = b.read("V", m, rank, 1.0);
    let vt = b.t(v);
    let uvt = b.mm(u, vt);
    let eps = b.lit(1e-15);
    let plus = b.add(uvt, eps);
    let lg = b.log(plus);
    let prod = b.mult(x, lg);
    let s = b.sum(prod);
    (b.build(vec![s]), vec!["X", "U", "V"])
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    panel: &str,
    caption: &str,
    sizes: &[usize],
    cols: usize,
    sp: f64,
    build: impl Fn(usize, usize, f64) -> (HopDag, Vec<&'static str>),
    data: impl Fn(usize, usize, f64, u64) -> Matrix,
    reps: usize,
    points: &mut Vec<PanelPoint>,
) {
    let mut t = Table::new(caption, &["cells/input", "Base", "Fused", "Gen", "Gen-FA", "Gen-FNR"]);
    for &rows in sizes {
        let (dag, names) = build(rows, cols, sp);
        let bindings = bind(
            names
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    if n == "v" {
                        (n, generate::rand_dense(cols, dag_v_cols(&dag), -1.0, 1.0, 99))
                    } else if n == "w" {
                        (n, generate::rand_dense(rows, 1, 0.1, 1.0, 98))
                    } else {
                        (n, data(rows, cols, sp, 42 + i as u64))
                    }
                })
                .collect(),
        );
        let mut row = vec![format!("{}", rows * cols)];
        for m in MODES {
            let ts = time_dag_stats(m, &dag, &bindings, reps);
            row.push(Table::secs(ts.secs));
            points.push(PanelPoint {
                panel: panel.to_string(),
                x: format!("{}", rows * cols),
                mode: mode_label(m).to_string(),
                secs: ts.secs,
                fused_ops: ts.fused_ops,
                mono_ops: ts.mono_ops,
                interp_fused_ops: ts.interp_fused_ops,
            });
        }
        t.row(row);
    }
    t.print();
}

/// Extracts the v-matrix column count from the row DAG (helper).
fn dag_v_cols(dag: &HopDag) -> usize {
    dag.iter()
        .find_map(|h| match &h.kind {
            fusedml_hop::OpKind::Read { name } if name == "v" => Some(h.size.cols),
            _ => None,
        })
        .unwrap_or(1)
}

/// Runs all Figure 8 panels.
pub fn run(scale: Scale) {
    let reps = scale.pick3(1, 3, 5);
    let sizes: Vec<usize> =
        scale.pick3(vec![1_000], vec![100, 1_000, 10_000], vec![1_000, 10_000, 100_000]);
    let cols = 1_000;
    let mut points: Vec<PanelPoint> = Vec::new();

    sweep(
        "fig8a",
        "Figure 8(a): sum(X⊙Y⊙Z), dense",
        &sizes,
        cols,
        1.0,
        cell_dag,
        |r, c, _s, seed| generate::rand_dense(r, c, -1.0, 1.0, seed),
        reps,
        &mut points,
    );
    sweep(
        "fig8b",
        "Figure 8(b): sum(X⊙Y⊙Z), sparse (0.1)",
        &sizes,
        cols,
        0.1,
        cell_dag,
        |r, c, s, seed| generate::rand_matrix(r, c, -1.0, 1.0, s, seed),
        reps,
        &mut points,
    );
    sweep(
        "fig8c",
        "Figure 8(c): sum(X⊙Y), sum(X⊙Z), dense (multi-aggregate)",
        &sizes,
        cols,
        1.0,
        magg_dag,
        |r, c, _s, seed| generate::rand_dense(r, c, -1.0, 1.0, seed),
        reps,
        &mut points,
    );
    sweep(
        "fig8d",
        "Figure 8(d): sum(X⊙Y), sum(X⊙Z), sparse (0.1)",
        &sizes,
        cols,
        0.1,
        magg_dag,
        |r, c, s, seed| generate::rand_matrix(r, c, -1.0, 1.0, s, seed),
        reps,
        &mut points,
    );
    sweep(
        "fig8e",
        "Figure 8(e): X^T(Xv), dense",
        &sizes,
        cols,
        1.0,
        |r, c, s| row_dag(r, c, 1, s),
        |r, c, _s, seed| generate::rand_dense(r, c, -1.0, 1.0, seed),
        reps,
        &mut points,
    );
    sweep(
        "fig8f",
        "Figure 8(f): X^T(Xv), sparse (0.1)",
        &sizes,
        cols,
        0.1,
        |r, c, s| row_dag(r, c, 1, s),
        |r, c, s, seed| generate::rand_matrix(r, c, -1.0, 1.0, s, seed),
        reps,
        &mut points,
    );
    sweep(
        "fig8g",
        "Figure 8(g): X^T(XV), dense, ncol(V)=2",
        &sizes,
        cols,
        1.0,
        |r, c, s| row_dag(r, c, 2, s),
        |r, c, _s, seed| generate::rand_dense(r, c, -1.0, 1.0, seed),
        reps,
        &mut points,
    );
    sweep(
        "fig8rs",
        "Figure 8(row-sparse): X^T(w⊙(Xv)), mlogreg-style, sparse (0.01)",
        &sizes,
        cols,
        0.01,
        row_sparse_dag,
        |r, c, s, seed| generate::rand_matrix(r, c, -1.0, 1.0, s, seed),
        reps,
        &mut points,
    );

    // Fig. 8(h): sparsity sweep with fixed geometry.
    let (n, m) = scale.pick((2_000, 2_000), (20_000, 2_000));
    let mut t = Table::new(
        "Figure 8(h): sum(X⊙log(UV^T+1e-15)), rank 100, sparsity sweep",
        &["sparsity", "Base", "Fused", "Gen", "Gen-FA", "Gen-FNR"],
    );
    for sp in [1.0, 0.1, 0.01, 0.001, 0.0001] {
        let (dag, _) = outer_dag(n, m, 100, sp);
        let bindings = bind(vec![
            ("X", generate::rand_matrix(n, m, 1.0, 5.0, sp, 1)),
            ("U", generate::rand_dense(n, 100, 0.1, 1.0, 2)),
            ("V", generate::rand_dense(m, 100, 0.1, 1.0, 3)),
        ]);
        let mut row = vec![format!("{sp}")];
        for md in MODES {
            let ts = time_dag_stats(md, &dag, &bindings, reps);
            row.push(Table::secs(ts.secs));
            points.push(PanelPoint {
                panel: "fig8h".to_string(),
                x: format!("{sp}"),
                mode: mode_label(md).to_string(),
                secs: ts.secs,
                fused_ops: ts.fused_ops,
                mono_ops: ts.mono_ops,
                interp_fused_ops: ts.interp_fused_ops,
            });
        }
        t.row(row);
    }
    t.print();

    write_json(scale, &points);
    // The monomorphizer must carry every Gen panel: a Gen point with fused
    // operators but no specialized kernel means a shape family regressed to
    // the tile interpreter.
    for p in points.iter().filter(|p| p.mode == mode_label(FusionMode::Gen)) {
        assert!(
            p.fused_ops == 0 || p.mono_ops > 0,
            "panel {} (x={}) ran {} fused ops with zero mono hits",
            p.panel,
            p.x,
            p.fused_ops
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::block::{compile_row_kernel, RowFastKernel};
    use fusedml_core::spoof::FusedSpec;
    use fusedml_runtime::{Engine, FusionMode};

    /// The mlogreg-style bench pattern must select a Row operator whose
    /// lowered kernel executes sparse mains over non-zeros through the
    /// mv-chain fast path — the property the row-sparse panel measures.
    #[test]
    fn row_sparse_pattern_compiles_to_sparse_mv_chain() {
        let (dag, _) = row_sparse_dag(500, 80, 0.01);
        let exec = Engine::new(FusionMode::Gen);
        let plan = exec.plan_for(&dag);
        let row = plan
            .operators
            .iter()
            .find_map(|o| match &o.op.spec {
                FusedSpec::Row(r) => Some((r, &o.cplan)),
                _ => None,
            })
            .expect("Gen must fuse the pattern into a Row operator");
        let (spec, cplan) = row;
        let kernel = compile_row_kernel(spec, &cplan.side_dims);
        assert!(kernel.sparse_main_ok, "sparse X must execute over non-zeros");
        assert!(
            matches!(kernel.fast, Some(RowFastKernel::MvChain { .. })),
            "expected the mv-chain fast path, got {:?}",
            kernel.fast
        );
        // The whole-vector load of `v` must be hoisted out of the row loop.
        assert!(!kernel.invariant.is_empty());
    }
}
