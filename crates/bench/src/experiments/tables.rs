//! Tables 3–6: compilation overhead, data-intensive, compute-intensive, and
//! distributed end-to-end experiments.

use super::Scale;
use crate::report::Table;
use crate::MODES;
use fusedml_algos::{alscg, autoencoder, glm, kmeans, l2svm, mlogreg};
use fusedml_hop::interp::Bindings;
use fusedml_linalg::{generate, par, Matrix};
use fusedml_runtime::dist::{execute_dist, SimCluster};
use fusedml_runtime::{shard, Engine, FusionMode};
use std::time::Instant;

/// Table 3: end-to-end compilation overhead per algorithm (Mnist60k-like
/// input; plan caching across iterations disabled to expose per-DAG
/// optimization, as SystemML's dynamic recompilation does).
pub fn table3(scale: Scale) {
    let (n, m) = scale.pick((10_000, 784), (60_000, 784));
    let mut t = Table::new(
        &format!("Table 3: compilation overhead (Mnist60k-like {n}x{m}, Gen)"),
        &["algorithm", "total [s]", "#DAGs/#CPlans/#compiled", "codegen [ms]", "opt [ms]"],
    );
    let mut run_algo = |name: &str, f: &mut dyn FnMut(&Engine) -> f64| {
        // Re-optimize per iteration (recompilation), as SystemML's dynamic
        // recompilation does.
        let exec = Engine::builder(FusionMode::Gen).cache_plans(false).build();
        let secs = f(&exec);
        let s = exec.optimizer().stats.snapshot();
        t.row(vec![
            name.to_string(),
            Table::secs(secs),
            format!("{}/{}/{}", s.dags_optimized, s.cplans_constructed, s.operators_compiled),
            format!("{:.1}", s.codegen_seconds * 1000.0),
            format!("{:.1}", s.optimize_seconds * 1000.0),
        ]);
    };
    let (x, y) = l2svm::synthetic_data(n, 100, 0.25, 1);
    run_algo("L2SVM", &mut |e| {
        l2svm::run(e, &x, &y, &l2svm::L2svmConfig { max_iter: 5, ..Default::default() }).seconds
    });
    let (xm, ym) = mlogreg::synthetic_data(n, 100, 3, 0.25, 2);
    run_algo("MLogreg", &mut |e| {
        mlogreg::run(
            e,
            &xm,
            &ym,
            &mlogreg::MLogregConfig {
                classes: 3,
                max_outer: 3,
                max_inner: 3,
                ..Default::default()
            },
        )
        .seconds
    });
    let (xg, yg) = glm::synthetic_data(n, 100, 0.25, 3);
    run_algo("GLM", &mut |e| {
        glm::run(e, &xg, &yg, &glm::GlmConfig { max_outer: 3, max_inner: 3, ..Default::default() })
            .seconds
    });
    let xk = kmeans::synthetic_data(n, 100, 1.0, 4);
    run_algo("KMeans", &mut |e| {
        kmeans::run(e, &xk, &kmeans::KMeansConfig { k: 5, max_iter: 5, ..Default::default() })
            .seconds
    });
    let xa = alscg::synthetic_data(2000, 1500, 0.01, 5);
    run_algo("ALS-CG", &mut |e| {
        alscg::run(e, &xa, &alscg::AlsConfig { rank: 10, max_iter: 5, ..Default::default() })
            .seconds
    });
    let xe = autoencoder::synthetic_data(2048, 100, 6);
    run_algo("AutoEncoder", &mut |e| {
        autoencoder::run(e, &xe, &autoencoder::AeConfig { epochs: 2, ..Default::default() }).seconds
    });
    t.print();
}

/// Table 4: data-intensive algorithms end-to-end across modes.
pub fn table4(scale: Scale) {
    let sizes: Vec<(usize, usize)> =
        scale.pick(vec![(50_000, 10), (200_000, 10)], vec![(1_000_000, 10), (10_000_000, 10)]);
    let mut t = Table::new(
        "Table 4: data-intensive algorithms [s]",
        &["algorithm", "data", "Base", "Fused", "Gen", "Gen-FA", "Gen-FNR"],
    );
    for &(n, m) in &sizes {
        let data_label = format!("{n}x{m}");
        let (x, y) = l2svm::synthetic_data(n, m, 1.0, 11);
        let mut row = vec!["L2SVM".to_string(), data_label.clone()];
        for mode in MODES {
            let r = l2svm::run(
                &Engine::new(mode),
                &x,
                &y,
                &l2svm::L2svmConfig { max_iter: 10, ..Default::default() },
            );
            row.push(Table::secs(r.seconds));
        }
        t.row(row);
        let (xm, ym) = mlogreg::synthetic_data(n, m, 2, 1.0, 12);
        let mut row = vec!["MLogreg".to_string(), data_label.clone()];
        for mode in MODES {
            let r = mlogreg::run(
                &Engine::new(mode),
                &xm,
                &ym,
                &mlogreg::MLogregConfig {
                    classes: 2,
                    max_outer: 3,
                    max_inner: 3,
                    ..Default::default()
                },
            );
            row.push(Table::secs(r.seconds));
        }
        t.row(row);
        let (xg, yg) = glm::synthetic_data(n, m, 1.0, 13);
        let mut row = vec!["GLM".to_string(), data_label.clone()];
        for mode in MODES {
            let r = glm::run(
                &Engine::new(mode),
                &xg,
                &yg,
                &glm::GlmConfig { max_outer: 3, max_inner: 3, ..Default::default() },
            );
            row.push(Table::secs(r.seconds));
        }
        t.row(row);
        let xk = kmeans::synthetic_data(n, m, 1.0, 14);
        let mut row = vec!["KMeans".to_string(), data_label.clone()];
        for mode in MODES {
            let r = kmeans::run(
                &Engine::new(mode),
                &xk,
                &kmeans::KMeansConfig { k: 5, max_iter: 5, ..Default::default() },
            );
            row.push(Table::secs(r.seconds));
        }
        t.row(row);
    }
    // Real-dataset substitutes.
    let (ar, ac) = scale.pick((50_000, 29), (500_000, 29));
    let airline = generate::airline_like(ar, ac, 20, 15);
    let (_, ya) = l2svm::synthetic_data(ar, ac, 1.0, 16);
    let mut row = vec!["L2SVM".to_string(), "Airline78-like".to_string()];
    for mode in MODES {
        let r = l2svm::run(
            &Engine::new(mode),
            &airline,
            &ya,
            &l2svm::L2svmConfig { max_iter: 10, ..Default::default() },
        );
        row.push(Table::secs(r.seconds));
    }
    t.row(row);
    let (mr, mc) = scale.pick((10_000, 784), (100_000, 784));
    let mnist = generate::mnist_like(mr, mc, 0.25, 17);
    let (_, ymn) = l2svm::synthetic_data(mr, mc, 1.0, 18);
    let mut row = vec!["L2SVM".to_string(), "Mnist8m-like".to_string()];
    for mode in MODES {
        let r = l2svm::run(
            &Engine::new(mode),
            &mnist,
            &ymn,
            &l2svm::L2svmConfig { max_iter: 10, ..Default::default() },
        );
        row.push(Table::secs(r.seconds));
    }
    t.row(row);
    t.print();
}

/// Table 5: compute-intensive algorithms (ALS-CG with the dense-plane OOM
/// guard producing the paper's `N/A` entries, AutoEncoder).
pub fn table5(scale: Scale) {
    let mut t = Table::new(
        "Table 5: compute-intensive algorithms [s]",
        &["algorithm", "data", "Base", "Fused", "Gen", "Gen-FA", "Gen-FNR"],
    );
    // The guard: modes without sparsity exploitation materialize the dense
    // n×m plane; refuse when it exceeds the budget (Table 5's N/A).
    let guard_bytes = scale.pick(0.4e9, 2.0e9);
    let als_sizes: Vec<(usize, usize)> =
        scale.pick(vec![(2_000, 2_000), (8_000, 8_000)], vec![(10_000, 10_000), (40_000, 40_000)]);
    for &(n, m) in &als_sizes {
        let x = alscg::synthetic_data(n, m, 0.01, 21);
        let mut row = vec!["ALS-CG".to_string(), format!("{n}x{m} (0.01)")];
        for mode in MODES {
            let materializes_plane =
                matches!(mode, FusionMode::Base | FusionMode::GenFA | FusionMode::GenFNR);
            if materializes_plane && alscg::dense_plane_bytes(n, m) > guard_bytes {
                row.push("N/A".to_string());
                continue;
            }
            let r = alscg::run(
                &Engine::new(mode),
                &x,
                &alscg::AlsConfig { rank: 20, max_iter: 2, ..Default::default() },
            );
            row.push(Table::secs(r.seconds));
        }
        t.row(row);
    }
    // Netflix-like / Amazon-like substitutes.
    let (nr, nc, nsp) = scale.pick((20_000, 2_000, 0.012), (480_000 / 4, 17_770 / 4, 0.012));
    let netflix = generate::ratings_like(nr, nc, nsp, 1.5, 22);
    let mut row = vec!["ALS-CG".to_string(), "Netflix-like".to_string()];
    for mode in MODES {
        let materializes_plane =
            matches!(mode, FusionMode::Base | FusionMode::GenFA | FusionMode::GenFNR);
        if materializes_plane && alscg::dense_plane_bytes(nr, nc) > guard_bytes {
            row.push("N/A".to_string());
            continue;
        }
        let r = alscg::run(
            &Engine::new(mode),
            &netflix,
            &alscg::AlsConfig { rank: 20, max_iter: 2, ..Default::default() },
        );
        row.push(Table::secs(r.seconds));
    }
    t.row(row);
    // AutoEncoder (dense).
    let sizes: Vec<(usize, usize)> = scale.pick(vec![(4_096, 100)], vec![(100_000, 784)]);
    for &(n, m) in &sizes {
        let x = autoencoder::synthetic_data(n, m, 23);
        let mut row = vec!["AutoEncoder".to_string(), format!("{n}x{m}")];
        for mode in MODES {
            let r = autoencoder::run(
                &Engine::new(mode),
                &x,
                &autoencoder::AeConfig { epochs: 1, ..Default::default() },
            );
            row.push(Table::secs(r.seconds));
        }
        t.row(row);
    }
    t.print();
}

/// Table 6: distributed algorithms on the simulated cluster — per-iteration
/// DAGs executed with broadcast/shuffle accounting (substitution X2).
pub fn table6(scale: Scale) {
    let (n, m) = scale.pick((200_000, 100), (2_000_000, 100));
    let iters = 5usize;
    // Budget below X's size so X-ops run distributed.
    let x_bytes = 8.0 * n as f64 * m as f64;
    let cluster = SimCluster { local_budget: x_bytes / 4.0, ..SimCluster::default() };
    let mut t = Table::new(
        &format!(
            "Table 6: simulated distributed runtime [s] (D-like {n}x{m}, {iters} iterations, 6 executors)"
        ),
        &["algorithm", "Base", "Fused", "Gen", "Gen-FA", "Gen-FNR", "Gen broadcasts"],
    );
    let run_iters = |mode: FusionMode, dag: &fusedml_hop::HopDag, bindings: &Bindings| {
        let exec = Engine::new(mode);
        let _warmup = execute_dist(&exec, dag, bindings, &cluster);
        let mut total = 0.0;
        let mut bc = 0;
        for _ in 0..iters {
            let (_, rep) = execute_dist(&exec, dag, bindings, &cluster);
            total += rep.sim_seconds;
            bc = rep.broadcasts;
        }
        (total, bc)
    };
    // L2SVM gradient iteration.
    let (x, y) = l2svm::synthetic_data(n, m, 1.0, 31);
    let dag = {
        let mut b = fusedml_hop::DagBuilder::new();
        let xx = b.read("X", n, m, 1.0);
        let yy = b.read("y", n, 1, 1.0);
        let ww = b.read("w", m, 1, 1.0);
        let xw = b.mm(xx, ww);
        let yxw = b.mult(yy, xw);
        let one = b.lit(1.0);
        let out = b.sub(one, yxw);
        let zero = b.lit(0.0);
        let ind = b.gt(out, zero);
        let mask = b.mult(ind, out);
        let d = b.mult(yy, mask);
        let xt = b.t(xx);
        let g = b.mm(xt, d);
        b.build(vec![g])
    };
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), x);
    bindings.insert("y".into(), y);
    bindings.insert("w".into(), Matrix::zeros(m, 1));
    push_dist_row(&mut t, "L2SVM", &dag, &bindings, &run_iters);

    // KMeans distance iteration.
    let xk = kmeans::synthetic_data(n, m, 1.0, 32);
    let dag = {
        let k = 5;
        let mut b = fusedml_hop::DagBuilder::new();
        let xx = b.read("X", n, m, 1.0);
        let c = b.read("C", k, m, 1.0);
        let ct = b.t(c);
        let xc = b.mm(xx, ct);
        let neg2 = b.lit(-2.0);
        let xc2 = b.mult(xc, neg2);
        let csq = b.sq(c);
        let cn = b.agg(fusedml_linalg::ops::AggOp::Sum, fusedml_linalg::ops::AggDir::Row, csq);
        let cnt = b.t(cn);
        let d = b.add(xc2, cnt);
        let dmin = b.agg(fusedml_linalg::ops::AggOp::Min, fusedml_linalg::ops::AggDir::Row, d);
        let wcss = b.sum(dmin);
        b.build(vec![wcss])
    };
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), xk);
    bindings.insert("C".into(), generate::rand_dense(5, m, 0.0, 1.0, 33));
    push_dist_row(&mut t, "KMeans", &dag, &bindings, &run_iters);
    t.print();
    table6_sharded(scale);
}

/// Builds the mlogreg CG inner-iteration DAG `t(X) %*% (w ⊙ (X %*% v))` —
/// the paper's canonical Row-template fusion — at the given geometry.
fn mlogreg_iteration_dag(n: usize, m: usize) -> fusedml_hop::HopDag {
    let mut b = fusedml_hop::DagBuilder::new();
    let x = b.read("X", n, m, 1.0);
    let w = b.read("w", n, 1, 1.0);
    let v = b.read("v", m, 1, 1.0);
    let xv = b.mm(x, v);
    let wxv = b.mult(w, xv);
    let xt = b.t(x);
    let g = b.mm(xt, wxv);
    b.build(vec![g])
}

/// Builds the kmeans distance-iteration DAG (`min` over `-2·XC^T + ‖C‖²`,
/// summed to the WCSS scalar) with `k` centroids.
fn kmeans_iteration_dag(n: usize, m: usize, k: usize) -> fusedml_hop::HopDag {
    let mut b = fusedml_hop::DagBuilder::new();
    let xx = b.read("X", n, m, 1.0);
    let c = b.read("C", k, m, 1.0);
    let ct = b.t(c);
    let xc = b.mm(xx, ct);
    let neg2 = b.lit(-2.0);
    let xc2 = b.mult(xc, neg2);
    let csq = b.sq(c);
    let cn = b.agg(fusedml_linalg::ops::AggOp::Sum, fusedml_linalg::ops::AggDir::Row, csq);
    let cnt = b.t(cn);
    let d = b.add(xc2, cnt);
    let dmin = b.agg(fusedml_linalg::ops::AggOp::Min, fusedml_linalg::ops::AggDir::Row, d);
    let wcss = b.sum(dmin);
    b.build(vec![wcss])
}

/// Table 6b: the same per-iteration DAGs on the **real** sharded runtime
/// ([`fusedml_runtime::shard`], DESIGN.md substitution X11), with the cost
/// model's per-plan estimate and the measured wall time side by side —
/// modeled and measured share one estimator
/// ([`shard::estimate_plan`]), so the table is the drift detector for the
/// distributed cost model that `dist::simulate` also prices plans with.
///
/// The local baseline runs kernels at one thread (a single shard's compute),
/// so "speedup" is shards-vs-one-shard on identical kernels. A
/// modeled-vs-measured ratio beyond 3x in either direction is flagged in the
/// last column. Under `--smoke` on a machine with >= 4 cores this gates CI:
/// the sharded iteration must beat the single-shard baseline by >= 1.5x and
/// must actually shard at least one operator.
fn table6_sharded(scale: Scale) {
    let shards = 4usize;
    let (n, m) = scale.pick((200_000, 100), (1_000_000, 100));
    let iters = 5usize;
    let mut t = Table::new(
        &format!(
            "Table 6b: real sharded runtime (X {n}x{m}, {shards} shards x 1 thread vs 1-thread local, {iters} iterations)"
        ),
        &[
            "algorithm",
            "modeled local [s]",
            "modeled sharded [s]",
            "measured local [s]",
            "measured sharded [s]",
            "speedup",
            "sharded ops (plan/run)",
            "model vs measured",
        ],
    );
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let mut cases: Vec<(&str, fusedml_hop::HopDag, Bindings)> = Vec::new();
    {
        let dag = mlogreg_iteration_dag(n, m);
        let mut bindings = Bindings::new();
        bindings.insert("X".into(), generate::rand_dense(n, m, -1.0, 1.0, 41));
        bindings.insert("w".into(), generate::rand_dense(n, 1, 0.0, 1.0, 42));
        bindings.insert("v".into(), generate::rand_dense(m, 1, -1.0, 1.0, 43));
        cases.push(("MLogreg", dag, bindings));
    }
    {
        let k = 20;
        let dag = kmeans_iteration_dag(n, m, k);
        let mut bindings = Bindings::new();
        bindings.insert("X".into(), kmeans::synthetic_data(n, m, 1.0, 44));
        bindings.insert("C".into(), generate::rand_dense(k, m, 0.0, 1.0, 45));
        cases.push(("KMeans", dag, bindings));
    }
    for (name, dag, bindings) in &cases {
        let local = Engine::builder(FusionMode::Gen).build();
        let plan = local.plan_for(dag);
        let est = shard::estimate_plan(dag, &plan, shards, &local.optimizer().model);
        let script = local.compile(dag);
        // One kernel thread: the honest single-shard baseline (the sharded
        // engine runs `shards` workers of one kernel thread each).
        par::set_num_threads(1);
        let _warmup = script.execute(bindings);
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = script.execute(bindings);
        }
        let local_secs = t0.elapsed().as_secs_f64() / iters as f64;
        par::set_num_threads(0);

        let sharded_engine =
            Engine::builder(FusionMode::Gen).shards(shards).shard_threads(1).build();
        let script = sharded_engine.compile(dag);
        let _warmup = script.execute(bindings);
        let t0 = Instant::now();
        let mut sharded_ops = 0usize;
        for _ in 0..iters {
            sharded_ops = script.execute(bindings).sched().sharded_ops;
        }
        let sharded_secs = t0.elapsed().as_secs_f64() / iters as f64;

        let speedup = local_secs / sharded_secs.max(1e-12);
        let ratio = |modeled: f64, measured: f64| {
            let (a, b) = (modeled.max(1e-12), measured.max(1e-12));
            (a / b).max(b / a)
        };
        let drift =
            ratio(est.chosen_seconds, sharded_secs).max(ratio(est.local_seconds, local_secs));
        let flag = if drift > 3.0 {
            format!("DIVERGES {drift:.1}x (>3x)")
        } else {
            format!("ok ({drift:.1}x)")
        };
        t.row(vec![
            name.to_string(),
            Table::secs(est.local_seconds),
            Table::secs(est.chosen_seconds),
            Table::secs(local_secs),
            Table::secs(sharded_secs),
            format!("{speedup:.2}x"),
            format!("{}/{}", est.sharded_ops, sharded_ops),
            flag,
        ]);
        if scale == Scale::Smoke {
            if cores >= 4 {
                assert!(
                    sharded_ops > 0,
                    "{name}: the planner sharded no operator at {shards} shards on {n}x{m}"
                );
                assert!(
                    speedup >= 1.5,
                    "{name}: sharded iteration is only {speedup:.2}x over the single-shard \
                     baseline (gate: >= 1.5x at {shards} shards)"
                );
            } else {
                println!(
                    "SKIP: {name} sharded speedup gate needs >= 4 cores, this machine has {cores}"
                );
            }
        }
    }
    t.print();
}

fn push_dist_row(
    t: &mut Table,
    name: &str,
    dag: &fusedml_hop::HopDag,
    bindings: &Bindings,
    run_iters: &dyn Fn(FusionMode, &fusedml_hop::HopDag, &Bindings) -> (f64, usize),
) {
    let mut row = vec![name.to_string()];
    let mut gen_bc = 0usize;
    for mode in MODES {
        let (secs, bc) = run_iters(mode, dag, bindings);
        if mode == FusionMode::Gen {
            gen_bc = bc;
        }
        row.push(Table::secs(secs));
    }
    row.push(gen_bc.to_string());
    t.row(row);
}
