//! Liveness analysis over HOP DAGs: per-hop consumer counts, last-use
//! positions, a topological schedule with ready sets of independent
//! operators, and a tracked peak-footprint simulation.
//!
//! SystemML's buffer-pool-managed control program frees and reuses
//! intermediates as the DAG executes ("Costing Generated Runtime Execution
//! Plans", Boehm 2017 models exactly this buffer-pool/memory-estimate
//! interplay). This pass computes the information the scheduled executor
//! needs to do the same: when each value dies (so its buffer returns to the
//! pool) and which operators are mutually independent (so they can execute
//! in parallel).

use crate::dag::{HopDag, HopId};
use crate::memory::op_memory_estimate;
use std::fmt;

/// Liveness facts for one DAG.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Reachable-from-roots mask.
    pub live: Vec<bool>,
    /// Per-hop number of live consumer *read occurrences* (a consumer using
    /// the same input twice counts twice). Roots do not add to this count;
    /// see [`Liveness::is_root`].
    pub consumers: Vec<u32>,
    /// True for DAG roots (outputs that must survive the whole execution).
    pub is_root: Vec<bool>,
    /// Topological position (index into [`Liveness::order`]) of the last
    /// consumer of each hop; `None` for dead hops and unconsumed roots.
    pub last_use: Vec<Option<usize>>,
    /// Live hops in topological (creation) order.
    pub order: Vec<HopId>,
    /// Dependency depth per hop: leaves are 0, otherwise
    /// `1 + max(level of inputs)`. Hops sharing a level are independent.
    pub level: Vec<usize>,
    /// Ready sets: `levels[d]` holds all live hops at depth `d`. All hops in
    /// one set can execute in parallel once the previous sets completed.
    pub levels: Vec<Vec<HopId>>,
}

impl Liveness {
    /// The widest ready set — an upper bound on useful inter-operator
    /// parallelism for this DAG.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// A divergence between cached [`Liveness`] facts and the facts recomputed
/// from the DAG they claim to describe. Cached facts go stale when a DAG is
/// mutated after analysis (or a compiled artifact is corrupted); every
/// variant names the first field found to disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LivenessError {
    /// A per-hop fact vector has the wrong length for the DAG.
    FieldLength {
        /// Which vector (`"live"`, `"consumers"`, …).
        field: &'static str,
        /// Expected length (`dag.len()`).
        expected: usize,
        /// Stored length.
        got: usize,
    },
    /// The reachable-from-roots mask disagrees at this hop.
    LiveMask {
        /// The hop whose liveness bit is wrong.
        hop: u32,
    },
    /// A consumer (read-occurrence) count disagrees at this hop.
    ConsumerCount {
        /// The hop whose count is wrong.
        hop: u32,
        /// Recomputed count.
        expected: u32,
        /// Stored count.
        got: u32,
    },
    /// The root mask disagrees at this hop.
    RootMask {
        /// The hop whose root bit is wrong.
        hop: u32,
    },
    /// The last-use position disagrees at this hop.
    LastUse {
        /// The hop whose last-use fact is wrong.
        hop: u32,
    },
    /// The topological order is not the live creation order.
    Order {
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// A dependency-depth level disagrees at this hop.
    Level {
        /// The hop whose level is wrong.
        hop: u32,
        /// Recomputed level.
        expected: usize,
        /// Stored level.
        got: usize,
    },
}

impl fmt::Display for LivenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LivenessError::FieldLength { field, expected, got } => {
                write!(f, "liveness field '{field}' has length {got}, DAG has {expected} hops")
            }
            LivenessError::LiveMask { hop } => {
                write!(f, "live mask disagrees with reachability at hop {hop}")
            }
            LivenessError::ConsumerCount { hop, expected, got } => {
                write!(f, "hop {hop} has {expected} live read occurrences, facts claim {got}")
            }
            LivenessError::RootMask { hop } => {
                write!(f, "root mask disagrees with DAG roots at hop {hop}")
            }
            LivenessError::LastUse { hop } => {
                write!(f, "last-use position disagrees at hop {hop}")
            }
            LivenessError::Order { detail } => write!(f, "topological order invalid: {detail}"),
            LivenessError::Level { hop, expected, got } => {
                write!(f, "hop {hop} has dependency depth {expected}, facts claim {got}")
            }
        }
    }
}

impl std::error::Error for LivenessError {}

/// Re-audits cached liveness facts against the DAG by recomputing them from
/// scratch and comparing field by field; reports the first divergence. The
/// plan verifier and any future recompilation path share this single auditor
/// instead of trusting cached facts.
pub fn check(dag: &HopDag, facts: &Liveness) -> Result<(), LivenessError> {
    let fresh = analyze(dag);
    let n = dag.len();
    let lengths: [(&'static str, usize); 6] = [
        ("live", facts.live.len()),
        ("consumers", facts.consumers.len()),
        ("is_root", facts.is_root.len()),
        ("last_use", facts.last_use.len()),
        ("level", facts.level.len()),
        ("levels(flat)", facts.levels.iter().map(Vec::len).sum()),
    ];
    for (field, got) in lengths {
        let expected = if field == "levels(flat)" { fresh.order.len() } else { n };
        if got != expected {
            return Err(LivenessError::FieldLength { field, expected, got });
        }
    }
    for i in 0..n {
        if facts.live[i] != fresh.live[i] {
            return Err(LivenessError::LiveMask { hop: i as u32 });
        }
        if facts.is_root[i] != fresh.is_root[i] {
            return Err(LivenessError::RootMask { hop: i as u32 });
        }
        if facts.consumers[i] != fresh.consumers[i] {
            return Err(LivenessError::ConsumerCount {
                hop: i as u32,
                expected: fresh.consumers[i],
                got: facts.consumers[i],
            });
        }
    }
    if facts.order != fresh.order {
        return Err(LivenessError::Order {
            detail: format!(
                "expected live creation order of {} hops, facts list {}",
                fresh.order.len(),
                facts.order.len()
            ),
        });
    }
    for i in 0..n {
        if facts.last_use[i] != fresh.last_use[i] {
            return Err(LivenessError::LastUse { hop: i as u32 });
        }
        if facts.level[i] != fresh.level[i] {
            return Err(LivenessError::Level {
                hop: i as u32,
                expected: fresh.level[i],
                got: facts.level[i],
            });
        }
    }
    if facts.levels != fresh.levels {
        return Err(LivenessError::Order { detail: "ready sets disagree with levels".to_string() });
    }
    Ok(())
}

/// Computes liveness facts for a DAG.
pub fn analyze(dag: &HopDag) -> Liveness {
    let n = dag.len();
    let live = dag.live_set();
    let mut is_root = vec![false; n];
    for &r in dag.roots() {
        is_root[r.index()] = true;
    }
    let mut consumers = vec![0u32; n];
    let mut level = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    for h in dag.iter() {
        if !live[h.id.index()] {
            continue;
        }
        order.push(h.id);
        let mut lvl = 0;
        for &i in &h.inputs {
            consumers[i.index()] += 1;
            lvl = lvl.max(level[i.index()] + 1);
        }
        if !h.inputs.is_empty() {
            level[h.id.index()] = lvl;
        }
    }
    let mut last_use = vec![None; n];
    for (pos, &id) in order.iter().enumerate() {
        for &i in &dag.hop(id).inputs {
            last_use[i.index()] = Some(pos);
        }
    }
    let depth = order.iter().map(|&id| level[id.index()]).max().map_or(0, |d| d + 1);
    let mut levels = vec![Vec::new(); depth];
    for &id in &order {
        levels[level[id.index()]].push(id);
    }
    Liveness { live, consumers, is_root, last_use, order, level, levels }
}

/// Estimated memory behaviour of one DAG execution, in bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FootprintReport {
    /// Peak resident bytes when dead intermediates are freed at last use
    /// (inputs + simultaneously live values), per the memory estimates.
    pub peak_bytes: f64,
    /// Resident bytes of the hold-everything execution the seed runtime
    /// performed: inputs plus *every* intermediate, none freed.
    pub resident_all_bytes: f64,
    /// Bytes the liveness-aware execution frees before the DAG finishes.
    pub freed_early_bytes: f64,
}

impl FootprintReport {
    /// Hold-everything peak over liveness-aware peak (≥ 1).
    pub fn reduction_factor(&self) -> f64 {
        if self.peak_bytes <= 0.0 {
            1.0
        } else {
            self.resident_all_bytes / self.peak_bytes
        }
    }
}

/// Simulates a topological execution with frees at last use, using the
/// (sparsity-aware) per-hop output sizes from the memory estimator, and
/// reports the tracked peak against the hold-everything baseline.
pub fn estimated_footprint(dag: &HopDag) -> FootprintReport {
    let lv = analyze(dag);
    let bytes_of = |id: HopId| dag.hop(id).size.bytes();
    let mut reads_left = lv.consumers.clone();
    let mut resident_now = 0.0f64;
    let mut resident_all = 0.0f64;
    let mut peak = 0.0f64;
    let mut freed_early = 0.0f64;
    let mut alive = vec![false; dag.len()];
    for (pos, &id) in lv.order.iter().enumerate() {
        // The operator's own working set (inputs + output + intermediate)
        // spikes during execution; account the spike against the resident set
        // without the operator's inputs/output counted twice.
        let own = op_memory_estimate(dag, id);
        let in_out: f64 = dag
            .hop(id)
            .inputs
            .iter()
            .map(|&i| bytes_of(i))
            .chain(std::iter::once(bytes_of(id)))
            .sum();
        resident_now += bytes_of(id);
        resident_all += bytes_of(id);
        alive[id.index()] = true;
        peak = peak.max(resident_now + (own - in_out).max(0.0));
        // Free inputs whose last use this was.
        for &i in &dag.hop(id).inputs {
            let slot = &mut reads_left[i.index()];
            *slot = slot.saturating_sub(1);
            if *slot == 0 && !lv.is_root[i.index()] && alive[i.index()] {
                alive[i.index()] = false;
                resident_now -= bytes_of(i);
                if pos + 1 < lv.order.len() {
                    freed_early += bytes_of(i);
                }
            }
        }
    }
    FootprintReport {
        peak_bytes: peak,
        resident_all_bytes: resident_all,
        freed_early_bytes: freed_early,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    /// X → a=exp(X) → b=exp(a) → … chain: only two values are ever live at
    /// once, so the tracked peak must be far below hold-everything.
    #[test]
    fn chain_peak_is_constant() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let mut cur = x;
        for _ in 0..8 {
            cur = b.exp(cur);
        }
        let dag = b.build(vec![cur]);
        let fp = estimated_footprint(&dag);
        // Hold-everything: X + 8 intermediates. Peak: X + 2 live values.
        assert!(fp.resident_all_bytes >= 9.0 * 8e6);
        assert!(fp.peak_bytes <= 3.0 * 8e6 + 1.0);
        assert!(fp.reduction_factor() >= 2.0);
        assert!(fp.freed_early_bytes > 0.0);
    }

    #[test]
    fn peak_never_exceeds_hold_everything() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 500, 400, 1.0);
        let y = b.read("Y", 500, 400, 1.0);
        let m = b.mult(x, y);
        let e = b.exp(m);
        let s1 = b.sum(e);
        let s2 = b.sum(m);
        let dag = b.build(vec![s1, s2]);
        let fp = estimated_footprint(&dag);
        assert!(fp.peak_bytes <= fp.resident_all_bytes);
    }

    #[test]
    fn consumer_counts_and_last_use() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let a = b.mult(x, x); // x read twice
        let e = b.exp(a);
        let s = b.sum(e);
        let dag = b.build(vec![s]);
        let lv = analyze(&dag);
        assert_eq!(lv.consumers[x.index()], 2);
        assert_eq!(lv.consumers[a.index()], 1);
        assert_eq!(lv.consumers[s.index()], 0);
        assert!(lv.is_root[s.index()]);
        // a's last use is exp's position in the order (position 2: x,a,e,s).
        assert_eq!(lv.last_use[a.index()], Some(2));
        assert_eq!(lv.last_use[s.index()], None);
    }

    #[test]
    fn levels_group_independent_ops() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let y = b.read("Y", 10, 10, 1.0);
        let a = b.exp(x); // level 1
        let c = b.exp(y); // level 1 — independent of a
        let s = b.add(a, c); // level 2
        let dag = b.build(vec![s]);
        let lv = analyze(&dag);
        assert_eq!(lv.level[a.index()], 1);
        assert_eq!(lv.level[c.index()], 1);
        assert_eq!(lv.level[s.index()], 2);
        assert_eq!(lv.levels[1].len(), 2);
        assert_eq!(lv.max_width(), 2);
    }

    #[test]
    fn check_accepts_fresh_facts_and_rejects_stale_ones() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let a = b.mult(x, x);
        let s = b.sum(a);
        let dag = b.build(vec![s]);
        let mut lv = analyze(&dag);
        assert_eq!(check(&dag, &lv), Ok(()));
        lv.consumers[x.index()] += 1;
        assert!(matches!(
            check(&dag, &lv),
            Err(LivenessError::ConsumerCount { hop, expected: 2, got: 3 }) if hop == x.0
        ));
    }

    #[test]
    fn dead_hops_are_excluded() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let dead = b.exp(x);
        let s = b.sum(x);
        let dag = b.build(vec![s]);
        let lv = analyze(&dag);
        assert!(!lv.live[dead.index()]);
        assert!(!lv.order.contains(&dead));
        // The dead consumer must not keep x's read count up.
        assert_eq!(lv.consumers[x.index()], 1);
    }

    /// Sparsity awareness: a sparse intermediate contributes nnz-proportional
    /// bytes to the footprint, not dense bytes.
    #[test]
    fn sparse_hops_charge_nnz_bytes() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 0.01);
        let y = b.read("Y", 1000, 1000, 1.0);
        let m = b.mult(x, y); // sparse-safe: output sparsity follows x
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        let fp = estimated_footprint(&dag);
        // Dense-accounted X alone would be 8 MB; sparse X + product are far
        // smaller, so the peak must sit well below X-dense + Y-dense + prod.
        assert!(fp.peak_bytes < 8e6 + 8e6);
    }
}
