// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]
//! # fusedml-hop
//!
//! The HOP (high-level operator) DAG compiler IR, mirroring SystemML's
//! per-statement-block DAGs of linear-algebra operations (paper §2.1).
//!
//! * [`hop`] — operator kinds and nodes,
//! * [`dag`] — the arena-allocated DAG with consumer tracking,
//! * [`builder`] — an expression-builder front end with hash-consing CSE
//!   (standing in for SystemML's R-like script parser),
//! * [`size`] — dimension and sparsity propagation (the IPA analogue; the
//!   fusion optimizer relies on known sizes for costing and validity),
//! * [`memory`] — operation memory estimates driving local-vs-distributed
//!   execution-type decisions,
//! * [`liveness`] — consumer counts, last-use positions, ready sets of
//!   independent operators, and tracked peak-footprint estimates for the
//!   scheduled executor,
//! * [`rewrite`] — static simplification rewrites and CSE,
//! * [`interp`] — a reference interpreter executing a DAG operator-by-
//!   operator with materialized intermediates (the `Base` mode of the
//!   evaluation, and the correctness oracle for fused execution).

pub mod builder;
pub mod dag;
pub mod hop;
pub mod interp;
pub mod liveness;
pub mod memory;
pub mod rewrite;
pub mod size;

pub use builder::DagBuilder;
pub use dag::{HopDag, HopId};
pub use hop::{Hop, OpKind};
pub use size::SizeInfo;
