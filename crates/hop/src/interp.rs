//! Reference interpreter: executes a HOP DAG operator-by-operator with fully
//! materialized intermediates.
//!
//! This is the `Base` execution mode of the paper's evaluation and the
//! correctness oracle against which fused execution is validated in tests.

use crate::dag::{HopDag, HopId};
use crate::hop::OpKind;
use fusedml_linalg::matrix::Value;
use fusedml_linalg::ops as lops;
use fusedml_linalg::Matrix;
use std::collections::HashMap;

/// Execution-time bindings of `Read` names to matrices.
pub type Bindings = HashMap<String, Matrix>;

/// Builds [`Bindings`] from `(name, matrix)` pairs — the ergonomic way to
/// bind inputs for `CompiledScript::execute` and the tests' oracle paths.
///
/// ```
/// use fusedml_hop::interp::bind;
/// use fusedml_linalg::Matrix;
/// let b = bind(&[("X", Matrix::zeros(2, 2))]);
/// assert!(b.contains_key("X"));
/// ```
pub fn bind(pairs: &[(&str, Matrix)]) -> Bindings {
    pairs.iter().map(|(n, m)| (n.to_string(), m.clone())).collect()
}

/// A typed binding defect: what `validate_bindings` reports instead of the
/// interpreter's panic. The runtime converts these into its `ExecError`
/// variants so `try_execute` callers get a structured error, not an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// A live `Read` has no matrix bound under its name.
    Unbound { name: String },
    /// A bound matrix disagrees with the shape the DAG was compiled for.
    Shape { name: String, expected: (usize, usize), bound: (usize, usize) },
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::Unbound { name } => write!(f, "unbound input matrix '{name}'"),
            BindError::Shape { name, expected, bound } => write!(
                f,
                "bound matrix '{name}' is {}x{} but the plan was compiled for {}x{}",
                bound.0, bound.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for BindError {}

/// Checks every live `Read` of the DAG against `bindings`: present, and
/// exactly the declared shape. This is the fallible twin of the shape
/// assertion the interpreter makes at `Read` evaluation — run it up front
/// and execution cannot abort on a binding defect.
pub fn validate_bindings(dag: &HopDag, bindings: &Bindings) -> Result<(), BindError> {
    for (name, rows, cols) in dag.input_shapes() {
        let Some(m) = bindings.get(&name) else {
            return Err(BindError::Unbound { name });
        };
        if (m.rows(), m.cols()) != (rows, cols) {
            return Err(BindError::Shape {
                name,
                expected: (rows, cols),
                bound: (m.rows(), m.cols()),
            });
        }
    }
    Ok(())
}

/// The `(name, rows, cols)` geometry of the bound matrices for the given
/// input names, sorted by name — the execution-side counterpart of
/// [`crate::HopDag::input_shapes`]. Panics on a missing binding, mirroring
/// the interpreter's unbound-input error.
pub fn bound_shapes(bindings: &Bindings, names: &[String]) -> Vec<(String, usize, usize)> {
    let mut out: Vec<(String, usize, usize)> = names
        .iter()
        .map(|n| {
            let m = bindings.get(n).unwrap_or_else(|| panic!("unbound input matrix '{n}'"));
            (n.clone(), m.rows(), m.cols())
        })
        .collect();
    out.sort();
    out
}

/// Executes all live operators bottom-up; returns the values of all nodes
/// (dead nodes hold `None`).
pub fn interpret_all(dag: &HopDag, bindings: &Bindings) -> Vec<Option<Value>> {
    let live = dag.live_set();
    let mut vals: Vec<Option<Value>> = vec![None; dag.len()];
    for h in dag.iter() {
        if !live[h.id.index()] {
            continue;
        }
        let v = eval_op(dag, h.id, &vals, bindings);
        vals[h.id.index()] = Some(v);
    }
    vals
}

/// Executes the DAG and returns the root values in root order. Roots are
/// *moved* out of the value table (they are deduplicated at build time), not
/// cloned.
pub fn interpret(dag: &HopDag, bindings: &Bindings) -> Vec<Value> {
    let mut vals = interpret_all(dag, bindings);
    dag.roots().iter().map(|r| vals[r.index()].take().expect("root evaluated")).collect()
}

/// Evaluates a single operator given already-computed input values.
pub fn eval_op(dag: &HopDag, id: HopId, vals: &[Option<Value>], bindings: &Bindings) -> Value {
    let h = dag.hop(id);
    let refs: Vec<&Value> = h
        .inputs
        .iter()
        .map(|&i| vals[i.index()].as_ref().expect("inputs evaluated before consumers"))
        .collect();
    eval_kind(dag, id, &refs, bindings)
}

/// Evaluates a single operator over *positional* input values (the scheduled
/// executor gathers inputs per task instead of holding a full value table).
pub fn eval_op_inputs(dag: &HopDag, id: HopId, inputs: &[Value], bindings: &Bindings) -> Value {
    let refs: Vec<&Value> = inputs.iter().collect();
    eval_kind(dag, id, &refs, bindings)
}

fn eval_kind(dag: &HopDag, id: HopId, input_refs: &[&Value], bindings: &Bindings) -> Value {
    let h = dag.hop(id);
    let input = |j: usize| -> &Value { input_refs[j] };
    match &h.kind {
        OpKind::Read { name } => {
            let m = bindings
                .get(name)
                .unwrap_or_else(|| panic!("unbound input matrix '{name}'"))
                .clone();
            assert_eq!(
                (m.rows(), m.cols()),
                (h.size.rows, h.size.cols),
                "bound matrix '{name}' does not match declared shape"
            );
            Value::Matrix(m)
        }
        OpKind::Literal { value } => Value::Scalar(*value),
        OpKind::Unary { op } => Value::Matrix(lops::unary(&input(0).as_matrix(), *op)),
        OpKind::Binary { op } => {
            let a = input(0);
            let b = input(1);
            match (a, b) {
                (Value::Scalar(x), Value::Scalar(y)) => Value::Scalar(op.apply(*x, *y)),
                (Value::Scalar(x), Value::Matrix(m)) => {
                    Value::Matrix(lops::elementwise::scalar_binary(*x, m, *op))
                }
                (Value::Matrix(m), Value::Scalar(y)) => {
                    Value::Matrix(lops::binary_scalar(m, *y, *op))
                }
                (Value::Matrix(x), Value::Matrix(y)) => Value::Matrix(lops::binary(x, y, *op)),
            }
        }
        OpKind::Ternary { op } => {
            let a = input(0).as_matrix();
            let b = input(1).as_matrix();
            let c = input(2).as_matrix();
            Value::Matrix(lops::ternary(&a, &b, &c, *op))
        }
        OpKind::MatMult => {
            Value::Matrix(lops::matmult(&input(0).as_matrix(), &input(1).as_matrix()))
        }
        OpKind::Transpose => Value::Matrix(lops::transpose(&input(0).as_matrix())),
        OpKind::Agg { op, dir } => {
            let r = lops::agg(&input(0).as_matrix(), *op, *dir);
            if r.is_scalar_shaped() {
                Value::Scalar(r.get(0, 0))
            } else {
                Value::Matrix(r)
            }
        }
        OpKind::CumAgg { op } => Value::Matrix(lops::cum_agg(&input(0).as_matrix(), *op)),
        OpKind::RightIndex { rows, cols } => {
            let m = input(0).as_matrix();
            let rr = rows.map(|(a, b)| a..b).unwrap_or(0..m.rows());
            let cc = cols.map(|(a, b)| a..b).unwrap_or(0..m.cols());
            Value::Matrix(lops::index_range(&m, rr, cc))
        }
        OpKind::CBind => Value::Matrix(lops::cbind(&input(0).as_matrix(), &input(1).as_matrix())),
        OpKind::RBind => Value::Matrix(lops::rbind(&input(0).as_matrix(), &input(1).as_matrix())),
        OpKind::Diag => Value::Matrix(lops::diag(&input(0).as_matrix())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use fusedml_linalg::generate;

    fn bind(pairs: &[(&str, Matrix)]) -> Bindings {
        pairs.iter().map(|(n, m)| (n.to_string(), m.clone())).collect()
    }

    #[test]
    fn sum_of_product() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2, 2, 1.0);
        let y = b.read("Y", 2, 2, 1.0);
        let m = b.mult(x, y);
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        let xm = generate::rand_dense(2, 2, 0.0, 1.0, 1);
        let ym = generate::rand_dense(2, 2, 0.0, 1.0, 2);
        let out = interpret(&dag, &bind(&[("X", xm.clone()), ("Y", ym.clone())]));
        let expect: f64 = (0..2)
            .flat_map(|r| (0..2).map(move |c| (r, c)))
            .map(|(r, c)| xm.get(r, c) * ym.get(r, c))
            .sum();
        assert!(fusedml_linalg::approx_eq(out[0].as_scalar(), expect, 1e-12));
    }

    #[test]
    fn mlogreg_core_expression_shapes() {
        // Q = P[,0:k] * (X v); H = t(X) (Q - P[,0:k] * rowSums(Q))
        let (n, m, k) = (30, 8, 3);
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let p = b.read("P", n, k + 1, 1.0);
        let v = b.read("V", m, k, 1.0);
        let xv = b.mm(x, v);
        let pk = b.rix(p, None, Some((0, k)));
        let q = b.mult(pk, xv);
        let rs = b.row_sums(q);
        let prs = b.mult(pk, rs);
        let diff = b.sub(q, prs);
        let xt = b.t(x);
        let h = b.mm(xt, diff);
        let dag = b.build(vec![h]);
        let out = interpret(
            &dag,
            &bind(&[
                ("X", generate::rand_dense(n, m, 0.0, 1.0, 3)),
                ("P", generate::rand_dense(n, k + 1, 0.0, 1.0, 4)),
                ("V", generate::rand_dense(m, k, 0.0, 1.0, 5)),
            ]),
        );
        let hm = out[0].as_matrix();
        assert_eq!((hm.rows(), hm.cols()), (m, k));
    }

    #[test]
    fn scalar_arithmetic_chains() {
        let mut b = DagBuilder::new();
        let c1 = b.lit(2.0);
        let c2 = b.lit(5.0);
        let s = b.add(c1, c2);
        let x = b.read("X", 2, 2, 1.0);
        let y = b.mult(x, s);
        let dag = b.build(vec![y]);
        let xm = Matrix::dense(fusedml_linalg::DenseMatrix::filled(2, 2, 1.0));
        let out = interpret(&dag, &bind(&[("X", xm)]));
        assert_eq!(out[0].as_matrix().get(0, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "unbound input matrix")]
    fn missing_binding_panics() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2, 2, 1.0);
        let dag = b.build(vec![x]);
        interpret(&dag, &Bindings::new());
    }

    #[test]
    #[should_panic(expected = "does not match declared shape")]
    fn wrong_shape_binding_panics() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2, 2, 1.0);
        let dag = b.build(vec![x]);
        interpret(&dag, &bind(&[("X", Matrix::zeros(3, 3))]));
    }

    #[test]
    fn validate_bindings_reports_typed_defects() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2, 3, 1.0);
        let y = b.read("Y", 2, 3, 1.0);
        let s = b.add(x, y);
        let dag = b.build(vec![s]);
        let ok = bind(&[("X", Matrix::zeros(2, 3)), ("Y", Matrix::zeros(2, 3))]);
        assert_eq!(validate_bindings(&dag, &ok), Ok(()));
        let missing = bind(&[("X", Matrix::zeros(2, 3))]);
        assert_eq!(validate_bindings(&dag, &missing), Err(BindError::Unbound { name: "Y".into() }));
        let misshaped = bind(&[("X", Matrix::zeros(2, 3)), ("Y", Matrix::zeros(3, 2))]);
        assert_eq!(
            validate_bindings(&dag, &misshaped),
            Err(BindError::Shape { name: "Y".into(), expected: (2, 3), bound: (3, 2) })
        );
    }

    #[test]
    fn rewritten_dag_same_result() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 5, 5, 1.0);
        let one = b.lit(1.0);
        let m = b.mult(x, one);
        let t1 = b.t(m);
        let t2 = b.t(t1);
        let s = b.sum(t2);
        let dag = b.build(vec![s]);
        let rewritten = crate::rewrite::apply_static_rewrites(&dag);
        let xm = generate::rand_dense(5, 5, -1.0, 1.0, 9);
        let bindings = bind(&[("X", xm)]);
        let a = interpret(&dag, &bindings)[0].as_scalar();
        let bv = interpret(&rewritten, &bindings)[0].as_scalar();
        assert!(fusedml_linalg::approx_eq(a, bv, 1e-12));
    }
}
