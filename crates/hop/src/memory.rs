//! Memory estimates for operations, driving execution-type decisions.
//!
//! SystemML computes per-operation memory estimates (inputs + output +
//! intermediates) against the driver's memory budget; operations that do not
//! fit execute as distributed Spark instructions (paper §2.1). The fusion
//! optimizer consults the same estimates for its conditional constraints
//! (paper §4.1) and broadcast costing.

use crate::dag::{HopDag, HopId};
use crate::hop::OpKind;

/// Default single-node memory budget in bytes (stand-in for the paper's
/// 35 GB driver; scaled down with the workloads).
pub const DEFAULT_LOCAL_BUDGET: f64 = 2.0 * 1024.0 * 1024.0 * 1024.0;

/// Where an operator executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecType {
    /// Single-node, multi-threaded.
    Local,
    /// Distributed (block-partitioned, Spark-like).
    Distributed,
}

/// Sparsity-aware size of one hop's output: nnz-proportional CSR bytes when
/// the runtime's format rule will keep it sparse, dense bytes otherwise
/// (mirrors `Matrix::size_in_bytes`). This is what the liveness pass and the
/// scheduler's footprint accounting charge per resident value.
pub fn hop_bytes(dag: &HopDag, id: HopId) -> f64 {
    dag.hop(id).size.bytes()
}

/// Estimated operation memory: all input sizes + output size (+ a transpose
/// buffer where applicable), in bytes. All terms are sparsity-aware: a
/// sparse hop charges nnz-proportional bytes, not dense `rows*cols*8`.
pub fn op_memory_estimate(dag: &HopDag, id: HopId) -> f64 {
    let h = dag.hop(id);
    let inputs: f64 = h.inputs.iter().map(|&i| hop_bytes(dag, i)).sum();
    let output = hop_bytes(dag, id);
    let intermediate = match h.kind {
        // Transpose and cumsum run out-of-place.
        OpKind::Transpose | OpKind::CumAgg { .. } => output,
        _ => 0.0,
    };
    inputs + output + intermediate
}

/// Chooses the execution type of each operator against a memory budget.
/// Leaves inherit `Local` (reads are streamed in either mode).
pub fn select_exec_types(dag: &HopDag, budget: f64) -> Vec<ExecType> {
    dag.iter()
        .map(|h| {
            // Leaves are streamed in either mode and count as local.
            if h.kind.is_leaf() || op_memory_estimate(dag, h.id) <= budget {
                ExecType::Local
            } else {
                ExecType::Distributed
            }
        })
        .collect()
}

/// Summary of a DAG's estimated memory behaviour (used in reports).
#[derive(Clone, Debug)]
pub struct MemorySummary {
    pub max_op_bytes: f64,
    pub total_intermediate_bytes: f64,
    pub distributed_ops: usize,
}

/// Computes the [`MemorySummary`] for a DAG under a budget.
pub fn summarize(dag: &HopDag, budget: f64) -> MemorySummary {
    let live = dag.live_set();
    let mut max_op = 0.0f64;
    let mut total = 0.0f64;
    let mut dist = 0usize;
    for h in dag.iter() {
        if !live[h.id.index()] || h.kind.is_leaf() {
            continue;
        }
        let m = op_memory_estimate(dag, h.id);
        max_op = max_op.max(m);
        total += h.size.bytes();
        if m > budget {
            dist += 1;
        }
    }
    MemorySummary { max_op_bytes: max_op, total_intermediate_bytes: total, distributed_ops: dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    fn small_dag() -> HopDag {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 100, 1.0);
        let y = b.read("Y", 1000, 100, 1.0);
        let m = b.mult(x, y);
        let s = b.sum(m);
        b.build(vec![s])
    }

    #[test]
    fn estimates_are_positive_and_bounded() {
        let dag = small_dag();
        for h in dag.iter() {
            if !h.kind.is_leaf() {
                let m = op_memory_estimate(&dag, h.id);
                assert!(m > 0.0);
                assert!(m < 1e9);
            }
        }
    }

    #[test]
    fn small_ops_stay_local() {
        let dag = small_dag();
        let et = select_exec_types(&dag, DEFAULT_LOCAL_BUDGET);
        assert!(et.iter().all(|&e| e == ExecType::Local));
    }

    #[test]
    fn huge_ops_go_distributed() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 200_000_000, 100, 1.0); // 160 GB
        let y = b.read("Y", 200_000_000, 100, 1.0);
        let m = b.mult(x, y);
        let dag = b.build(vec![m]);
        let et = select_exec_types(&dag, DEFAULT_LOCAL_BUDGET);
        assert_eq!(et[m.index()], ExecType::Distributed);
    }

    #[test]
    fn summary_counts_distributed() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 200_000_000, 100, 1.0);
        let s = b.sum(x);
        let e = b.exp(x);
        let s2 = b.sum(e);
        let dag = b.build(vec![s, s2]);
        let sum = summarize(&dag, DEFAULT_LOCAL_BUDGET);
        assert!(sum.distributed_ops >= 2, "sum over X and exp(X) exceed budget");
        assert!(sum.max_op_bytes > 1e11);
    }

    /// Pins the estimates for dense, sparse, and transposed hops: sparse
    /// hops must charge nnz-proportional CSR bytes (16 B/nnz + row
    /// pointers), not dense `rows*cols*8`.
    #[test]
    fn estimates_are_sparsity_aware() {
        let (n, m) = (1000usize, 1000usize);
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, 0.01); // sparse: 10k nnz
        let y = b.read("Y", n, m, 1.0); // dense
        let p = b.mult(x, y); // sparse-safe: output stays sparse
        let xt = b.t(x); // sparse transpose
        let s = b.sum(p);
        let s2 = b.sum(xt);
        let dag = b.build(vec![s, s2]);

        let dense_bytes = 8.0 * (n * m) as f64;
        let sparse_bytes = |sp: f64| 16.0 * (n * m) as f64 * sp + 8.0 * (n as f64 + 1.0);
        assert_eq!(hop_bytes(&dag, y), dense_bytes);
        assert_eq!(hop_bytes(&dag, x), sparse_bytes(0.01));
        // The product inherits x's (estimated) sparsity and stays CSR-sized.
        let p_sp = dag.hop(p).size.sparsity;
        assert!(p_sp <= 0.01 + 1e-12);
        assert_eq!(hop_bytes(&dag, p), sparse_bytes(p_sp));
        // mult(x, y): sparse input + dense input + sparse output — orders of
        // magnitude below the dense-everything figure of 3 * 8 MB.
        let est = op_memory_estimate(&dag, p);
        assert_eq!(est, sparse_bytes(0.01) + dense_bytes + sparse_bytes(p_sp));
        assert!(est < 2.0 * dense_bytes);
        // Transposed sparse hop: input + output + out-of-place buffer, all
        // CSR-sized (the transpose of a sparse matrix stays sparse).
        let est_t = op_memory_estimate(&dag, xt);
        assert_eq!(est_t, sparse_bytes(0.01) + 2.0 * hop_bytes(&dag, xt));
        assert!(est_t < dense_bytes);
    }

    #[test]
    fn transpose_charges_intermediate() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let t = b.t(x);
        let dag = b.build(vec![t]);
        let m = op_memory_estimate(&dag, t);
        assert_eq!(m, 8e6 + 8e6 + 8e6, "input + output + buffer");
    }
}
