//! Memory estimates for operations, driving execution-type decisions.
//!
//! SystemML computes per-operation memory estimates (inputs + output +
//! intermediates) against the driver's memory budget; operations that do not
//! fit execute as distributed Spark instructions (paper §2.1). The fusion
//! optimizer consults the same estimates for its conditional constraints
//! (paper §4.1) and broadcast costing.

use crate::dag::{HopDag, HopId};
use crate::hop::OpKind;

/// Default single-node memory budget in bytes (stand-in for the paper's
/// 35 GB driver; scaled down with the workloads).
pub const DEFAULT_LOCAL_BUDGET: f64 = 2.0 * 1024.0 * 1024.0 * 1024.0;

/// Where an operator executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecType {
    /// Single-node, multi-threaded.
    Local,
    /// Distributed (block-partitioned, Spark-like).
    Distributed,
}

/// Estimated operation memory: all input sizes + output size (+ a transpose
/// buffer where applicable), in bytes.
pub fn op_memory_estimate(dag: &HopDag, id: HopId) -> f64 {
    let h = dag.hop(id);
    let inputs: f64 = h.inputs.iter().map(|&i| dag.hop(i).size.bytes()).sum();
    let output = h.size.bytes();
    let intermediate = match h.kind {
        // Transpose and cumsum run out-of-place.
        OpKind::Transpose | OpKind::CumAgg { .. } => output,
        _ => 0.0,
    };
    inputs + output + intermediate
}

/// Chooses the execution type of each operator against a memory budget.
/// Leaves inherit `Local` (reads are streamed in either mode).
pub fn select_exec_types(dag: &HopDag, budget: f64) -> Vec<ExecType> {
    dag.iter()
        .map(|h| {
            // Leaves are streamed in either mode and count as local.
            if h.kind.is_leaf() || op_memory_estimate(dag, h.id) <= budget {
                ExecType::Local
            } else {
                ExecType::Distributed
            }
        })
        .collect()
}

/// Summary of a DAG's estimated memory behaviour (used in reports).
#[derive(Clone, Debug)]
pub struct MemorySummary {
    pub max_op_bytes: f64,
    pub total_intermediate_bytes: f64,
    pub distributed_ops: usize,
}

/// Computes the [`MemorySummary`] for a DAG under a budget.
pub fn summarize(dag: &HopDag, budget: f64) -> MemorySummary {
    let live = dag.live_set();
    let mut max_op = 0.0f64;
    let mut total = 0.0f64;
    let mut dist = 0usize;
    for h in dag.iter() {
        if !live[h.id.index()] || h.kind.is_leaf() {
            continue;
        }
        let m = op_memory_estimate(dag, h.id);
        max_op = max_op.max(m);
        total += h.size.bytes();
        if m > budget {
            dist += 1;
        }
    }
    MemorySummary { max_op_bytes: max_op, total_intermediate_bytes: total, distributed_ops: dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    fn small_dag() -> HopDag {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 100, 1.0);
        let y = b.read("Y", 1000, 100, 1.0);
        let m = b.mult(x, y);
        let s = b.sum(m);
        b.build(vec![s])
    }

    #[test]
    fn estimates_are_positive_and_bounded() {
        let dag = small_dag();
        for h in dag.iter() {
            if !h.kind.is_leaf() {
                let m = op_memory_estimate(&dag, h.id);
                assert!(m > 0.0);
                assert!(m < 1e9);
            }
        }
    }

    #[test]
    fn small_ops_stay_local() {
        let dag = small_dag();
        let et = select_exec_types(&dag, DEFAULT_LOCAL_BUDGET);
        assert!(et.iter().all(|&e| e == ExecType::Local));
    }

    #[test]
    fn huge_ops_go_distributed() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 200_000_000, 100, 1.0); // 160 GB
        let y = b.read("Y", 200_000_000, 100, 1.0);
        let m = b.mult(x, y);
        let dag = b.build(vec![m]);
        let et = select_exec_types(&dag, DEFAULT_LOCAL_BUDGET);
        assert_eq!(et[m.index()], ExecType::Distributed);
    }

    #[test]
    fn summary_counts_distributed() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 200_000_000, 100, 1.0);
        let s = b.sum(x);
        let e = b.exp(x);
        let s2 = b.sum(e);
        let dag = b.build(vec![s, s2]);
        let sum = summarize(&dag, DEFAULT_LOCAL_BUDGET);
        assert!(sum.distributed_ops >= 2, "sum over X and exp(X) exceed budget");
        assert!(sum.max_op_bytes > 1e11);
    }

    #[test]
    fn transpose_charges_intermediate() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let t = b.t(x);
        let dag = b.build(vec![t]);
        let m = op_memory_estimate(&dag, t);
        assert_eq!(m, 8e6 + 8e6 + 8e6, "input + output + buffer");
    }
}
