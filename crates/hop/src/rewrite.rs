//! Static (size-independent) simplification rewrites.
//!
//! SystemML applies a large battery of static and dynamic rewrites before
//! codegen (paper §2.1). We implement the subset that interacts with fusion
//! in the evaluation workloads: algebraic identity elimination, double
//! transpose, constant folding, and dead-code elimination. CSE happens at
//! construction time via the builder's hash-consing.

use crate::dag::{HopDag, HopId};
use crate::hop::OpKind;
use fusedml_linalg::ops::BinaryOp;

/// Applies the static rewrite battery until fixpoint (bounded), returning a
/// rebuilt DAG containing only live nodes.
pub fn apply_static_rewrites(dag: &HopDag) -> HopDag {
    let mut current = rebuild(dag, &identity_map(dag));
    for _ in 0..4 {
        let remap = compute_rewrites(&current);
        let next = rebuild(&current, &remap);
        let changed = next.len() != current.len();
        current = next;
        if !changed {
            break;
        }
    }
    current
}

fn identity_map(dag: &HopDag) -> Vec<HopId> {
    (0..dag.len() as u32).map(HopId).collect()
}

/// For each node, the node that should replace it (possibly itself).
fn compute_rewrites(dag: &HopDag) -> Vec<HopId> {
    let mut remap = identity_map(dag);
    for h in dag.iter() {
        let resolved: Vec<HopId> = h.inputs.iter().map(|i| remap[i.index()]).collect();
        let get = |id: HopId| dag.hop(id);
        let replacement: Option<HopId> = match &h.kind {
            // t(t(X)) → X
            OpKind::Transpose => {
                let inner = get(resolved[0]);
                if matches!(inner.kind, OpKind::Transpose) {
                    Some(remap[inner.inputs[0].index()])
                } else {
                    None
                }
            }
            OpKind::Binary { op } => {
                let a = resolved[0];
                let b = resolved[1];
                let bh = get(b);
                let ah = get(a);
                let lit = |id: HopId| match get(id).kind {
                    OpKind::Literal { value } => Some(value),
                    _ => None,
                };
                match op {
                    // X * 1 → X, 1 * X → X, X * 0 → 0 (scalar only), X + 0 → X …
                    BinaryOp::Mult => {
                        if lit(b) == Some(1.0) {
                            Some(a)
                        } else if lit(a) == Some(1.0) {
                            Some(b)
                        } else {
                            None
                        }
                    }
                    BinaryOp::Add => {
                        if lit(b) == Some(0.0) {
                            Some(a)
                        } else if lit(a) == Some(0.0) {
                            Some(b)
                        } else {
                            None
                        }
                    }
                    BinaryOp::Sub => {
                        if lit(b) == Some(0.0) {
                            Some(a)
                        } else {
                            None
                        }
                    }
                    BinaryOp::Div => {
                        if lit(b) == Some(1.0) {
                            Some(a)
                        } else {
                            None
                        }
                    }
                    BinaryOp::Pow => {
                        if lit(b) == Some(1.0) {
                            Some(a)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
                .or_else(|| {
                    // Constant folding of scalar-scalar ops is handled by the
                    // rebuild step (needs node creation); marked here as None.
                    let _ = (ah, bh);
                    None
                })
            }
            _ => None,
        };
        if let Some(r) = replacement {
            remap[h.id.index()] = r;
        }
    }
    // Resolve chains (a→b→c).
    for i in 0..remap.len() {
        let mut t = remap[i];
        while remap[t.index()] != t {
            t = remap[t.index()];
        }
        remap[i] = t;
    }
    remap
}

/// Rebuilds the DAG applying `remap` and dropping dead nodes; also performs
/// scalar constant folding during reconstruction.
fn rebuild(dag: &HopDag, remap: &[HopId]) -> HopDag {
    let mut b = crate::builder::DagBuilder::new();
    let mut new_ids: Vec<Option<HopId>> = vec![None; dag.len()];
    // Union of live sets from all roots after remapping.
    let mut live = vec![false; dag.len()];
    let mut stack: Vec<HopId> = dag.roots().iter().map(|r| remap[r.index()]).collect();
    while let Some(id) = stack.pop() {
        if !live[id.index()] {
            live[id.index()] = true;
            for &i in &dag.hop(id).inputs {
                stack.push(remap[i.index()]);
            }
        }
    }
    for h in dag.iter() {
        if !live[h.id.index()] || remap[h.id.index()] != h.id {
            continue;
        }
        let ins: Vec<HopId> = h
            .inputs
            .iter()
            .map(|i| new_ids[remap[i.index()].index()].expect("topological order"))
            .collect();
        // Scalar constant folding.
        if let OpKind::Binary { op } = h.kind {
            if let (OpKind::Literal { value: va }, OpKind::Literal { value: vb }) = (
                &dag.hop(remap[h.inputs[0].index()]).kind,
                &dag.hop(remap[h.inputs[1].index()]).kind,
            ) {
                new_ids[h.id.index()] = Some(b.lit(op.apply(*va, *vb)));
                continue;
            }
        }
        let id = match &h.kind {
            OpKind::Read { name } => b.read(name, h.size.rows, h.size.cols, h.size.sparsity),
            OpKind::Literal { value } => b.lit(*value),
            OpKind::Unary { op } => b.unary(*op, ins[0]),
            OpKind::Binary { op } => b.binary(*op, ins[0], ins[1]),
            OpKind::Ternary { op } => b.ternary(*op, ins[0], ins[1], ins[2]),
            OpKind::MatMult => b.mm(ins[0], ins[1]),
            OpKind::Transpose => b.t(ins[0]),
            OpKind::Agg { op, dir } => b.agg(*op, *dir, ins[0]),
            OpKind::CumAgg { .. } => b.cumsum(ins[0]),
            OpKind::RightIndex { rows, cols } => b.rix(ins[0], *rows, *cols),
            OpKind::CBind => b.cbind(ins[0], ins[1]),
            OpKind::RBind => b.rbind(ins[0], ins[1]),
            OpKind::Diag => b.diag(ins[0]),
        };
        new_ids[h.id.index()] = Some(id);
    }
    let roots: Vec<HopId> = dag
        .roots()
        .iter()
        .map(|r| new_ids[remap[r.index()].index()].expect("root rebuilt"))
        .collect();
    b.build(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    #[test]
    fn double_transpose_eliminated() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 5, 1.0);
        let t1 = b.t(x);
        let t2 = b.t(t1);
        let s = b.sum(t2);
        let dag = b.build(vec![s]);
        let r = apply_static_rewrites(&dag);
        assert!(
            !r.iter().any(|h| matches!(h.kind, OpKind::Transpose)),
            "transposes should be gone:\n{}",
            r.explain()
        );
    }

    #[test]
    fn mult_by_one_eliminated() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 5, 1.0);
        let one = b.lit(1.0);
        let m = b.mult(x, one);
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        let r = apply_static_rewrites(&dag);
        assert_eq!(r.len(), 2, "only read + sum should remain:\n{}", r.explain());
    }

    #[test]
    fn add_zero_eliminated_both_sides() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 4, 4, 1.0);
        let zero = b.lit(0.0);
        let l = b.add(zero, x);
        let r2 = b.add(l, zero);
        let s = b.sum(r2);
        let dag = b.build(vec![s]);
        let r = apply_static_rewrites(&dag);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn scalar_constants_fold() {
        let mut b = DagBuilder::new();
        let c1 = b.lit(2.0);
        let c2 = b.lit(3.0);
        let x = b.read("X", 4, 4, 1.0);
        let c = b.mult(c1, c2);
        let y = b.mult(x, c);
        let s = b.sum(y);
        let dag = b.build(vec![s]);
        let r = apply_static_rewrites(&dag);
        let lit = r
            .iter()
            .find_map(|h| match h.kind {
                OpKind::Literal { value } => Some(value),
                _ => None,
            })
            .expect("folded literal");
        assert_eq!(lit, 6.0);
        assert_eq!(r.len(), 4, "read, lit, mult, sum:\n{}", r.explain());
    }

    #[test]
    fn dead_code_dropped() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 4, 4, 1.0);
        let _dead = b.exp(x);
        let s = b.sum(x);
        let dag = b.build(vec![s]);
        let r = apply_static_rewrites(&dag);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn rewrites_preserve_roots() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 4, 4, 1.0);
        let one = b.lit(1.0);
        let m = b.mult(x, one);
        let dag = b.build(vec![m]);
        let r = apply_static_rewrites(&dag);
        assert_eq!(r.roots().len(), 1);
        let root = r.hop(r.roots()[0]);
        assert!(matches!(root.kind, OpKind::Read { .. }), "root collapses to X");
    }
}
