//! Expression-builder front end for HOP DAGs.
//!
//! Stands in for SystemML's script parser: ML algorithms construct DAGs
//! programmatically. The builder hash-conses identical subexpressions, so
//! common subexpressions share one node (SystemML performs the equivalent
//! CSE during static rewrites).

use crate::dag::{HopDag, HopId};
use crate::hop::OpKind;
use crate::size::{self, SizeInfo};
use fusedml_linalg::ops::{AggDir, AggOp, BinaryOp, TernaryOp, UnaryOp};
use std::collections::HashMap;

/// Builds a [`HopDag`] bottom-up with hash-consing CSE.
#[derive(Default)]
pub struct DagBuilder {
    dag: HopDag,
    cse: HashMap<CseKey, HopId>,
}

/// Structural key for hash-consing.
#[derive(PartialEq, Eq, Hash)]
enum CseKey {
    Read(String),
    Literal(u64),
    Op(String, Vec<HopId>),
}

impl DagBuilder {
    pub fn new() -> Self {
        DagBuilder::default()
    }

    fn intern(&mut self, key: CseKey, kind: OpKind, inputs: Vec<HopId>, sz: SizeInfo) -> HopId {
        if let Some(&id) = self.cse.get(&key) {
            return id;
        }
        let id = self.dag.push(kind, inputs, sz);
        self.cse.insert(key, id);
        id
    }

    fn op_key(&self, kind: &OpKind, inputs: &[HopId]) -> CseKey {
        CseKey::Op(format!("{kind:?}"), inputs.to_vec())
    }

    /// The size info of an already-created node.
    pub fn size_of(&self, id: HopId) -> SizeInfo {
        self.dag.hop(id).size
    }

    // ---- leaves ---------------------------------------------------------

    /// Declares an input matrix with known geometry and sparsity estimate.
    pub fn read(&mut self, name: &str, rows: usize, cols: usize, sparsity: f64) -> HopId {
        let kind = OpKind::Read { name: name.to_string() };
        self.intern(
            CseKey::Read(name.to_string()),
            kind,
            vec![],
            SizeInfo::new(rows, cols, sparsity),
        )
    }

    /// A scalar literal.
    pub fn lit(&mut self, value: f64) -> HopId {
        self.intern(
            CseKey::Literal(value.to_bits()),
            OpKind::Literal { value },
            vec![],
            SizeInfo::scalar(),
        )
    }

    // ---- generic node constructors --------------------------------------

    /// Creates (or CSE-resolves) a node whose size is inferred from its
    /// inputs by [`size::infer`] — the same propagation the executor re-runs
    /// when bound input geometry changes.
    fn infer_node(&mut self, kind: OpKind, inputs: Vec<HopId>) -> HopId {
        let sizes: Vec<SizeInfo> = inputs.iter().map(|&i| self.size_of(i)).collect();
        let sz = size::infer(&kind, &sizes);
        let key = self.op_key(&kind, &inputs);
        self.intern(key, kind, inputs, sz)
    }

    /// Element-wise binary with broadcasting; the output geometry follows the
    /// non-scalar operand.
    pub fn binary(&mut self, op: BinaryOp, a: HopId, b: HopId) -> HopId {
        self.infer_node(OpKind::Binary { op }, vec![a, b])
    }

    /// Element-wise unary.
    pub fn unary(&mut self, op: UnaryOp, a: HopId) -> HopId {
        self.infer_node(OpKind::Unary { op }, vec![a])
    }

    /// Fused scalar ternary.
    pub fn ternary(&mut self, op: TernaryOp, a: HopId, b: HopId, c: HopId) -> HopId {
        self.infer_node(OpKind::Ternary { op }, vec![a, b, c])
    }

    /// Matrix multiplication.
    pub fn mm(&mut self, a: HopId, b: HopId) -> HopId {
        self.infer_node(OpKind::MatMult, vec![a, b])
    }

    /// Transpose.
    pub fn t(&mut self, a: HopId) -> HopId {
        self.infer_node(OpKind::Transpose, vec![a])
    }

    /// Aggregation.
    pub fn agg(&mut self, op: AggOp, dir: AggDir, a: HopId) -> HopId {
        self.infer_node(OpKind::Agg { op, dir }, vec![a])
    }

    /// Right indexing with optional static ranges.
    pub fn rix(
        &mut self,
        a: HopId,
        rows: Option<(usize, usize)>,
        cols: Option<(usize, usize)>,
    ) -> HopId {
        self.infer_node(OpKind::RightIndex { rows, cols }, vec![a])
    }

    /// Cumulative sum down the rows.
    pub fn cumsum(&mut self, a: HopId) -> HopId {
        self.infer_node(OpKind::CumAgg { op: AggOp::Sum }, vec![a])
    }

    /// Column binding.
    pub fn cbind(&mut self, a: HopId, b: HopId) -> HopId {
        self.infer_node(OpKind::CBind, vec![a, b])
    }

    /// Row binding.
    pub fn rbind(&mut self, a: HopId, b: HopId) -> HopId {
        self.infer_node(OpKind::RBind, vec![a, b])
    }

    /// `diag`.
    pub fn diag(&mut self, a: HopId) -> HopId {
        self.infer_node(OpKind::Diag, vec![a])
    }

    // ---- convenience wrappers (script-like surface) ----------------------

    pub fn add(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Add, a, b)
    }
    pub fn sub(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Sub, a, b)
    }
    pub fn mult(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Mult, a, b)
    }
    pub fn div(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Div, a, b)
    }
    pub fn min(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Min, a, b)
    }
    pub fn max(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Max, a, b)
    }
    pub fn pow(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Pow, a, b)
    }
    pub fn neq(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Neq, a, b)
    }
    pub fn gt(&mut self, a: HopId, b: HopId) -> HopId {
        self.binary(BinaryOp::Gt, a, b)
    }
    pub fn exp(&mut self, a: HopId) -> HopId {
        self.unary(UnaryOp::Exp, a)
    }
    pub fn log(&mut self, a: HopId) -> HopId {
        self.unary(UnaryOp::Log, a)
    }
    pub fn sqrt(&mut self, a: HopId) -> HopId {
        self.unary(UnaryOp::Sqrt, a)
    }
    pub fn abs(&mut self, a: HopId) -> HopId {
        self.unary(UnaryOp::Abs, a)
    }
    pub fn sigmoid(&mut self, a: HopId) -> HopId {
        self.unary(UnaryOp::Sigmoid, a)
    }
    pub fn sq(&mut self, a: HopId) -> HopId {
        self.unary(UnaryOp::Pow2, a)
    }
    pub fn sum(&mut self, a: HopId) -> HopId {
        self.agg(AggOp::Sum, AggDir::Full, a)
    }
    pub fn sum_sq(&mut self, a: HopId) -> HopId {
        self.agg(AggOp::SumSq, AggDir::Full, a)
    }
    pub fn row_sums(&mut self, a: HopId) -> HopId {
        self.agg(AggOp::Sum, AggDir::Row, a)
    }
    pub fn col_sums(&mut self, a: HopId) -> HopId {
        self.agg(AggOp::Sum, AggDir::Col, a)
    }
    pub fn row_maxs(&mut self, a: HopId) -> HopId {
        self.agg(AggOp::Max, AggDir::Row, a)
    }
    pub fn min_full(&mut self, a: HopId) -> HopId {
        self.agg(AggOp::Min, AggDir::Full, a)
    }

    /// Finalizes the DAG with the given roots.
    pub fn build(mut self, roots: Vec<HopId>) -> HopDag {
        for r in roots {
            self.dag.add_root(r);
        }
        self.dag
    }

    /// Finalizes with roots and applies static rewrites.
    pub fn build_rewritten(self, roots: Vec<HopId>) -> HopDag {
        let dag = self.build(roots);
        crate::rewrite::apply_static_rewrites(&dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cse_merges_identical_subexpressions() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let y = b.read("Y", 10, 10, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(x, y);
        assert_eq!(m1, m2, "identical ops must be hash-consed");
        let m3 = b.mult(y, x);
        assert_ne!(m1, m3, "operand order distinguishes nodes");
    }

    #[test]
    fn literal_interned_by_bits() {
        let mut b = DagBuilder::new();
        assert_eq!(b.lit(1.5), b.lit(1.5));
        assert_ne!(b.lit(1.5), b.lit(2.5));
    }

    #[test]
    fn sizes_propagate_through_mm_chain() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 20, 1.0);
        let v = b.read("v", 20, 1, 1.0);
        let xv = b.mm(x, v);
        assert_eq!((b.size_of(xv).rows, b.size_of(xv).cols), (100, 1));
        let xt = b.t(x);
        let out = b.mm(xt, xv);
        assert_eq!((b.size_of(out).rows, b.size_of(out).cols), (20, 1));
    }

    #[test]
    fn agg_shapes() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 50, 7, 1.0);
        let rs = b.row_sums(x);
        let cs = b.col_sums(x);
        let fs = b.sum(x);
        assert_eq!((b.size_of(rs).rows, b.size_of(rs).cols), (50, 1));
        assert_eq!((b.size_of(cs).rows, b.size_of(cs).cols), (1, 7));
        assert_eq!((b.size_of(fs).rows, b.size_of(fs).cols), (1, 1));
    }

    #[test]
    fn rix_ranges() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 8, 0.1);
        let s = b.rix(x, Some((0, 5)), Some((2, 8)));
        let sz = b.size_of(s);
        assert_eq!((sz.rows, sz.cols), (5, 6));
        assert_eq!(sz.sparsity, 0.1);
    }

    #[test]
    #[should_panic(expected = "matmult shape mismatch")]
    fn mm_shape_mismatch_panics() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 8, 1.0);
        let y = b.read("Y", 10, 8, 1.0);
        b.mm(x, y);
    }

    #[test]
    #[should_panic(expected = "incompatible binary shapes")]
    fn binary_shape_mismatch_panics() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 8, 1.0);
        let y = b.read("Y", 9, 8, 1.0);
        b.add(x, y);
    }

    #[test]
    fn sparsity_estimates_flow() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 0.01);
        let y = b.read("Y", 1000, 1000, 0.5);
        let m = b.mult(x, y);
        assert!((b.size_of(m).sparsity - 0.005).abs() < 1e-12);
        let e = b.exp(m);
        assert_eq!(b.size_of(e).sparsity, 1.0, "exp densifies");
    }

    #[test]
    fn scalar_broadcast_keeps_matrix_shape() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let c = b.lit(2.0);
        let y = b.mult(x, c);
        assert_eq!((b.size_of(y).rows, b.size_of(y).cols), (10, 10));
        let z = b.mult(c, x);
        assert_eq!((b.size_of(z).rows, b.size_of(z).cols), (10, 10));
    }
}
