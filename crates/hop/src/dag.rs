//! The arena-allocated HOP DAG.

use crate::hop::{Hop, OpKind};
use std::fmt;

/// Identifier of a HOP node: an index into the DAG arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HopId(pub u32);

impl HopId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A DAG of HOP nodes for one statement block. Nodes are stored in creation
/// order, which is a valid topological order (inputs precede consumers).
#[derive(Clone, Debug, Default)]
pub struct HopDag {
    hops: Vec<Hop>,
    roots: Vec<HopId>,
}

impl HopDag {
    /// An empty DAG (populated through [`crate::builder::DagBuilder`]).
    pub fn new() -> Self {
        HopDag::default()
    }

    /// Adds a node; used by the builder. Inputs must already exist.
    pub(crate) fn push(
        &mut self,
        kind: OpKind,
        inputs: Vec<HopId>,
        size: crate::SizeInfo,
    ) -> HopId {
        debug_assert!(inputs.iter().all(|i| i.index() < self.hops.len()));
        debug_assert_eq!(inputs.len(), kind.arity(), "arity mismatch for {kind:?}");
        let id = HopId(self.hops.len() as u32);
        self.hops.push(Hop { id, kind, inputs, size });
        id
    }

    /// Marks a node as a DAG root (an output consumed by later blocks).
    pub fn add_root(&mut self, id: HopId) {
        if !self.roots.contains(&id) {
            self.roots.push(id);
        }
    }

    /// All root node ids.
    pub fn roots(&self) -> &[HopId] {
        &self.roots
    }

    /// Node accessor.
    #[inline]
    pub fn hop(&self, id: HopId) -> &Hop {
        &self.hops[id.index()]
    }

    /// Mutable node accessor for verifier mutation tests only: lets a test
    /// corrupt a compiled artifact (e.g. drift a stored size) to prove the
    /// verifier catches it. Not part of the public API contract.
    #[doc(hidden)]
    pub fn hop_mut(&mut self, id: HopId) -> &mut Hop {
        &mut self.hops[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Iterates nodes in topological (creation) order.
    pub fn iter(&self) -> impl Iterator<Item = &Hop> {
        self.hops.iter()
    }

    /// Computes the consumer lists (`id → ids of hops reading it`). Roots
    /// additionally count as having one external consumer in the optimizer's
    /// materialization reasoning; that adjustment is applied there, not here.
    pub fn consumers(&self) -> Vec<Vec<HopId>> {
        let mut out = vec![Vec::new(); self.hops.len()];
        for h in &self.hops {
            for &i in &h.inputs {
                out[i.index()].push(h.id);
            }
        }
        out
    }

    /// Number of consumers per node (cheaper than [`HopDag::consumers`]).
    pub fn consumer_counts(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.hops.len()];
        for h in &self.hops {
            for &i in &h.inputs {
                out[i.index()] += 1;
            }
        }
        out
    }

    /// The set of nodes reachable from the roots (dead nodes can appear
    /// after rewrites).
    pub fn live_set(&self) -> Vec<bool> {
        let mut live = vec![false; self.hops.len()];
        let mut stack: Vec<HopId> = self.roots.clone();
        while let Some(id) = stack.pop() {
            if !live[id.index()] {
                live[id.index()] = true;
                stack.extend(self.hop(id).inputs.iter().copied());
            }
        }
        live
    }

    /// The declared geometry of every *live* `Read` input, sorted by name:
    /// `(name, rows, cols)`. This is the geometry a compiled script was
    /// costed under; executors compare it against the bound matrices to
    /// decide whether the plan is still valid.
    pub fn input_shapes(&self) -> Vec<(String, usize, usize)> {
        let live = self.live_set();
        let mut out: Vec<(String, usize, usize)> = self
            .hops
            .iter()
            .filter(|h| live[h.id.index()])
            .filter_map(|h| match &h.kind {
                OpKind::Read { name } => Some((name.clone(), h.size.rows, h.size.cols)),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }

    /// Rebuilds this DAG with updated `Read` geometry (and sparsity), re-
    /// propagating every downstream size with [`crate::size::infer`] — the
    /// recompile path when bound input geometry invalidates a costed plan.
    /// `geometry` maps input names to `(rows, cols, sparsity)`; unnamed reads
    /// keep their declared size. Panics when the new geometry is structurally
    /// incompatible with the DAG (e.g. a matmult inner-dimension mismatch),
    /// with the same messages the builder raises.
    pub fn with_read_geometry(
        &self,
        geometry: &std::collections::HashMap<String, (usize, usize, f64)>,
    ) -> HopDag {
        // Only live hops execute, and only live reads were probed for the
        // new geometry — dead nodes keep their declared sizes instead of
        // being re-inferred (their stale inputs could be incompatible with
        // the new shapes, and they never run).
        let live = self.live_set();
        let mut out = HopDag::new();
        for h in &self.hops {
            let size = match &h.kind {
                OpKind::Read { name } => match geometry.get(name) {
                    Some(&(rows, cols, sparsity)) => crate::SizeInfo::new(rows, cols, sparsity),
                    None => h.size,
                },
                OpKind::Literal { .. } => h.size,
                _ if !live[h.id.index()] => h.size,
                kind => {
                    let ins: Vec<crate::SizeInfo> =
                        h.inputs.iter().map(|&i| out.hop(i).size).collect();
                    crate::size::infer(kind, &ins)
                }
            };
            out.push(h.kind.clone(), h.inputs.clone(), size);
        }
        out.roots = self.roots.clone();
        out
    }

    /// Renders an `explain`-style listing (one line per live node), for
    /// debugging and documentation examples.
    pub fn explain(&self) -> String {
        let live = self.live_set();
        let mut s = String::new();
        for h in &self.hops {
            if !live[h.id.index()] {
                continue;
            }
            let ins: Vec<String> = h.inputs.iter().map(|i| i.to_string()).collect();
            let root = if self.roots.contains(&h.id) { " [root]" } else { "" };
            s.push_str(&format!(
                "{:>4} {:<12} ({})  {}x{}, sp={:.4}{}\n",
                h.id.to_string(),
                h.kind.display_name(),
                ins.join(","),
                h.size.rows,
                h.size.cols,
                h.size.sparsity,
                root
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DagBuilder;

    #[test]
    fn topological_order_holds() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let y = b.read("Y", 10, 10, 1.0);
        let m = b.mult(x, y);
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        for h in dag.iter() {
            for &i in &h.inputs {
                assert!(i < h.id, "input {i} must precede {}", h.id);
            }
        }
    }

    #[test]
    fn consumers_and_counts() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 4, 4, 1.0);
        let a = b.mult(x, x); // consumes x twice
        let s = b.sum(a);
        let dag = b.build(vec![s]);
        let counts = dag.consumer_counts();
        assert_eq!(counts[x.index()], 2);
        assert_eq!(counts[a.index()], 1);
        assert_eq!(counts[s.index()], 0);
        let cons = dag.consumers();
        assert_eq!(cons[x.index()], vec![a, a]);
    }

    #[test]
    fn live_set_excludes_dead_nodes() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 4, 4, 1.0);
        let _dead = b.exp(x);
        let s = b.sum(x);
        let dag = b.build(vec![s]);
        let live = dag.live_set();
        assert!(live[x.index()]);
        assert!(live[s.index()]);
        assert!(!live[1], "exp node should be dead");
    }

    #[test]
    fn with_read_geometry_ignores_dead_nodes() {
        // A dead mm(A, X) whose stale inner dimension (8) becomes
        // incompatible once X grows to 16 rows — it never executes, so the
        // re-propagation must not try to re-infer (and panic on) it.
        let mut b = DagBuilder::new();
        let x = b.read("X", 8, 4, 1.0);
        let a = b.read("A", 3, 8, 1.0);
        let _dead = b.mm(a, x);
        let s = b.sum(x);
        let dag = b.build(vec![s]);
        let geometry =
            std::collections::HashMap::from([("X".to_string(), (16usize, 4usize, 1.0f64))]);
        let reshaped = dag.with_read_geometry(&geometry);
        assert_eq!(reshaped.hop(x).size.rows, 16, "live read reshaped");
        assert_eq!(reshaped.hop(s).size.rows, 1, "live consumer re-inferred");
    }

    #[test]
    fn explain_contains_ops() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 4, 4, 1.0);
        let s = b.sum(x);
        let dag = b.build(vec![s]);
        let e = dag.explain();
        assert!(e.contains("PRead X"));
        assert!(e.contains("ua(+)"));
        assert!(e.contains("[root]"));
    }
}
