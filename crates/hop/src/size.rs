//! Size (dimension + sparsity) propagation.
//!
//! SystemML's inter-procedural analysis propagates matrix dimensions and
//! sparsity from the inputs through the program; the codegen optimizer is
//! invoked with known sizes (paper §2.1). Here every [`SizeInfo`] is inferred
//! bottom-up when nodes are created, using standard worst-case sparsity
//! estimators.

use fusedml_linalg::ops::{AggDir, BinaryOp};

/// Inferred output geometry and sparsity of a HOP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeInfo {
    /// Output rows.
    pub rows: usize,
    /// Output columns.
    pub cols: usize,
    /// Estimated fraction of non-zero cells in `[0, 1]`.
    pub sparsity: f64,
}

impl SizeInfo {
    /// A scalar (1×1, dense).
    pub fn scalar() -> Self {
        SizeInfo { rows: 1, cols: 1, sparsity: 1.0 }
    }

    /// A new size with explicit sparsity.
    pub fn new(rows: usize, cols: usize, sparsity: f64) -> Self {
        SizeInfo { rows, cols, sparsity: sparsity.clamp(0.0, 1.0) }
    }

    /// A dense matrix of the given shape.
    pub fn dense(rows: usize, cols: usize) -> Self {
        SizeInfo { rows, cols, sparsity: 1.0 }
    }

    /// Cell count.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Estimated non-zero count.
    pub fn nnz(&self) -> f64 {
        self.cells() as f64 * self.sparsity
    }

    /// Estimated in-memory size in bytes under the runtime's format rule
    /// (CSR below the sparse threshold, dense otherwise).
    pub fn bytes(&self) -> f64 {
        if self.sparsity < fusedml_linalg::matrix::SPARSE_THRESHOLD
            && self.cells() >= fusedml_linalg::matrix::SPARSE_MIN_CELLS
        {
            16.0 * self.nnz() + 8.0 * (self.rows as f64 + 1.0)
        } else {
            8.0 * self.cells() as f64
        }
    }

    /// True if the runtime will store this matrix in CSR format.
    pub fn is_sparse_format(&self) -> bool {
        self.sparsity < fusedml_linalg::matrix::SPARSE_THRESHOLD
            && self.cells() >= fusedml_linalg::matrix::SPARSE_MIN_CELLS
    }
}

/// Sparsity estimate for element-wise binary ops, given input sparsities.
/// Uses the independence assumption of SystemML's worst-case estimator.
pub fn binary_sparsity(op: BinaryOp, sp_a: f64, sp_b: f64) -> f64 {
    use BinaryOp::*;
    match op {
        Mult | And => sp_a * sp_b,
        Add | Sub | Or => (sp_a + sp_b).min(1.0),
        // Division by implicit zeros and comparisons generally densify.
        _ => 1.0,
    }
}

/// Sparsity estimate for matrix multiplication `(m×k) %*% (k×n)`.
pub fn matmult_sparsity(sp_a: f64, sp_b: f64, k: usize) -> f64 {
    // P(output cell non-zero) = 1 - (1 - sp_a*sp_b)^k under independence.
    let p = 1.0 - (1.0 - sp_a * sp_b).powi(k.min(1_000_000) as i32);
    p.clamp(0.0, 1.0)
}

/// Sparsity estimate after an aggregation.
pub fn agg_sparsity(dir: AggDir) -> f64 {
    // Aggregates are treated as dense outputs (vectors/scalars).
    let _ = dir;
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_switch_format() {
        let dense = SizeInfo::dense(1000, 1000);
        assert_eq!(dense.bytes(), 8_000_000.0);
        let sparse = SizeInfo::new(1000, 1000, 0.01);
        assert!(sparse.is_sparse_format());
        assert!(sparse.bytes() < 200_000.0 + 9000.0);
        let tiny = SizeInfo::new(10, 10, 0.01);
        assert!(!tiny.is_sparse_format(), "small matrices stay dense");
    }

    #[test]
    fn binary_sparsity_estimates() {
        assert_eq!(binary_sparsity(BinaryOp::Mult, 0.1, 0.5), 0.05);
        assert_eq!(binary_sparsity(BinaryOp::Add, 0.6, 0.6), 1.0);
        assert_eq!(binary_sparsity(BinaryOp::Div, 0.1, 0.1), 1.0);
    }

    #[test]
    fn matmult_sparsity_monotone_in_k() {
        let s1 = matmult_sparsity(0.01, 0.01, 10);
        let s2 = matmult_sparsity(0.01, 0.01, 10_000);
        assert!(s1 < s2);
        assert!(s2 <= 1.0);
    }

    #[test]
    fn clamp_on_new() {
        let s = SizeInfo::new(2, 2, 7.0);
        assert_eq!(s.sparsity, 1.0);
    }
}
