//! Size (dimension + sparsity) propagation.
//!
//! SystemML's inter-procedural analysis propagates matrix dimensions and
//! sparsity from the inputs through the program; the codegen optimizer is
//! invoked with known sizes (paper §2.1). Here every [`SizeInfo`] is inferred
//! bottom-up when nodes are created, using standard worst-case sparsity
//! estimators.

use crate::hop::OpKind;
use fusedml_linalg::ops::{AggDir, BinaryOp};

/// Inferred output geometry and sparsity of a HOP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeInfo {
    /// Output rows.
    pub rows: usize,
    /// Output columns.
    pub cols: usize,
    /// Estimated fraction of non-zero cells in `[0, 1]`.
    pub sparsity: f64,
}

impl SizeInfo {
    /// A scalar (1×1, dense).
    pub fn scalar() -> Self {
        SizeInfo { rows: 1, cols: 1, sparsity: 1.0 }
    }

    /// A new size with explicit sparsity.
    pub fn new(rows: usize, cols: usize, sparsity: f64) -> Self {
        SizeInfo { rows, cols, sparsity: sparsity.clamp(0.0, 1.0) }
    }

    /// A dense matrix of the given shape.
    pub fn dense(rows: usize, cols: usize) -> Self {
        SizeInfo { rows, cols, sparsity: 1.0 }
    }

    /// Cell count.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Estimated non-zero count.
    pub fn nnz(&self) -> f64 {
        self.cells() as f64 * self.sparsity
    }

    /// Estimated in-memory size in bytes under the runtime's format rule
    /// (CSR below the sparse threshold, dense otherwise).
    pub fn bytes(&self) -> f64 {
        if self.sparsity < fusedml_linalg::matrix::SPARSE_THRESHOLD
            && self.cells() >= fusedml_linalg::matrix::SPARSE_MIN_CELLS
        {
            16.0 * self.nnz() + 8.0 * (self.rows as f64 + 1.0)
        } else {
            8.0 * self.cells() as f64
        }
    }

    /// True if the runtime will store this matrix in CSR format.
    pub fn is_sparse_format(&self) -> bool {
        self.sparsity < fusedml_linalg::matrix::SPARSE_THRESHOLD
            && self.cells() >= fusedml_linalg::matrix::SPARSE_MIN_CELLS
    }
}

/// Sparsity estimate for element-wise binary ops, given input sparsities.
/// Uses the independence assumption of SystemML's worst-case estimator.
pub fn binary_sparsity(op: BinaryOp, sp_a: f64, sp_b: f64) -> f64 {
    use BinaryOp::*;
    match op {
        Mult | And => sp_a * sp_b,
        Add | Sub | Or => (sp_a + sp_b).min(1.0),
        // Division by implicit zeros and comparisons generally densify.
        _ => 1.0,
    }
}

/// Sparsity estimate for matrix multiplication `(m×k) %*% (k×n)`.
pub fn matmult_sparsity(sp_a: f64, sp_b: f64, k: usize) -> f64 {
    // P(output cell non-zero) = 1 - (1 - sp_a*sp_b)^k under independence.
    let p = 1.0 - (1.0 - sp_a * sp_b).powi(k.min(1_000_000) as i32);
    p.clamp(0.0, 1.0)
}

/// Sparsity estimate after an aggregation.
pub fn agg_sparsity(dir: AggDir) -> f64 {
    // Aggregates are treated as dense outputs (vectors/scalars).
    let _ = dir;
    1.0
}

/// Infers the output [`SizeInfo`] of an operator from its input sizes —
/// the single source of truth shared by [`crate::builder::DagBuilder`] (when
/// nodes are created) and [`crate::dag::HopDag::with_read_geometry`] (when a
/// compiled DAG is re-propagated for changed input geometry). Panics on
/// incompatible shapes with the same messages the builder always raised.
///
/// `Read` sizes are external facts and cannot be inferred; callers supply
/// them directly.
pub fn infer(kind: &OpKind, ins: &[SizeInfo]) -> SizeInfo {
    match try_infer(kind, ins) {
        Ok(s) => s,
        Err(m) => panic!("{m}"),
    }
}

/// Non-panicking twin of [`infer`]: incompatible shapes come back as the
/// message [`infer`] would have panicked with. The plan verifier re-derives
/// every stored hop size through this entry point, so shape drift in a
/// compiled artifact surfaces as a typed error instead of a miscompile.
pub fn try_infer(kind: &OpKind, ins: &[SizeInfo]) -> Result<SizeInfo, String> {
    Ok(match kind {
        OpKind::Read { name } => return Err(format!("Read '{name}' has no inferable size")),
        OpKind::Literal { .. } => SizeInfo::scalar(),
        OpKind::Unary { op } => {
            let sa = ins[0];
            let sp = if op.sparse_safe() { sa.sparsity } else { 1.0 };
            SizeInfo::new(sa.rows, sa.cols, sp)
        }
        OpKind::Binary { op } => {
            let (sa, sb) = (ins[0], ins[1]);
            let (rows, cols) =
                if sa.cells() >= sb.cells() { (sa.rows, sa.cols) } else { (sb.rows, sb.cols) };
            // Broadcast legality mirrors ops::resolve_broadcast; checked here
            // so shape errors surface at build/re-propagation time.
            let compat = |big: SizeInfo, small: SizeInfo| {
                (small.rows == big.rows || small.rows == 1)
                    && (small.cols == big.cols || small.cols == 1)
            };
            let (big, small) = if sa.cells() >= sb.cells() { (sa, sb) } else { (sb, sa) };
            if !compat(big, small) {
                return Err(format!(
                    "incompatible binary shapes {}x{} vs {}x{}",
                    sa.rows, sa.cols, sb.rows, sb.cols
                ));
            }
            // Sparsity: broadcast vectors behave like dense inputs here.
            SizeInfo::new(rows, cols, binary_sparsity(*op, sa.sparsity, sb.sparsity))
        }
        OpKind::Ternary { .. } => SizeInfo::dense(ins[0].rows, ins[0].cols),
        OpKind::MatMult => {
            let (sa, sb) = (ins[0], ins[1]);
            if sa.cols != sb.rows {
                return Err(format!(
                    "matmult shape mismatch {}x{} %*% {}x{}",
                    sa.rows, sa.cols, sb.rows, sb.cols
                ));
            }
            SizeInfo::new(sa.rows, sb.cols, matmult_sparsity(sa.sparsity, sb.sparsity, sa.cols))
        }
        OpKind::Transpose => SizeInfo::new(ins[0].cols, ins[0].rows, ins[0].sparsity),
        OpKind::Agg { dir, .. } => {
            let sa = ins[0];
            let (rows, cols) = match dir {
                AggDir::Full => (1, 1),
                AggDir::Row => (sa.rows, 1),
                AggDir::Col => (1, sa.cols),
            };
            SizeInfo::new(rows, cols, agg_sparsity(*dir))
        }
        OpKind::CumAgg { .. } => SizeInfo::dense(ins[0].rows, ins[0].cols),
        OpKind::RightIndex { rows, cols } => {
            let sa = ins[0];
            let (rl, ru) = rows.unwrap_or((0, sa.rows));
            let (cl, cu) = cols.unwrap_or((0, sa.cols));
            if !(rl < ru && ru <= sa.rows) {
                return Err(format!("row range {rl}..{ru} out of {}", sa.rows));
            }
            if !(cl < cu && cu <= sa.cols) {
                return Err(format!("col range {cl}..{cu} out of {}", sa.cols));
            }
            SizeInfo::new(ru - rl, cu - cl, sa.sparsity)
        }
        OpKind::CBind => {
            let (sa, sb) = (ins[0], ins[1]);
            if sa.rows != sb.rows {
                return Err("cbind row mismatch".to_string());
            }
            let sp = (sa.nnz() + sb.nnz()) / ((sa.cells() + sb.cells()) as f64).max(1.0);
            SizeInfo::new(sa.rows, sa.cols + sb.cols, sp)
        }
        OpKind::RBind => {
            let (sa, sb) = (ins[0], ins[1]);
            if sa.cols != sb.cols {
                return Err("rbind col mismatch".to_string());
            }
            let sp = (sa.nnz() + sb.nnz()) / ((sa.cells() + sb.cells()) as f64).max(1.0);
            SizeInfo::new(sa.rows + sb.rows, sa.cols, sp)
        }
        OpKind::Diag => {
            let sa = ins[0];
            if sa.cols == 1 {
                SizeInfo::new(sa.rows, sa.rows, 1.0 / sa.rows.max(1) as f64)
            } else {
                if sa.rows != sa.cols {
                    return Err("diag of non-square".to_string());
                }
                SizeInfo::dense(sa.rows, 1)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_switch_format() {
        let dense = SizeInfo::dense(1000, 1000);
        assert_eq!(dense.bytes(), 8_000_000.0);
        let sparse = SizeInfo::new(1000, 1000, 0.01);
        assert!(sparse.is_sparse_format());
        assert!(sparse.bytes() < 200_000.0 + 9000.0);
        let tiny = SizeInfo::new(10, 10, 0.01);
        assert!(!tiny.is_sparse_format(), "small matrices stay dense");
    }

    #[test]
    fn binary_sparsity_estimates() {
        assert_eq!(binary_sparsity(BinaryOp::Mult, 0.1, 0.5), 0.05);
        assert_eq!(binary_sparsity(BinaryOp::Add, 0.6, 0.6), 1.0);
        assert_eq!(binary_sparsity(BinaryOp::Div, 0.1, 0.1), 1.0);
    }

    #[test]
    fn matmult_sparsity_monotone_in_k() {
        let s1 = matmult_sparsity(0.01, 0.01, 10);
        let s2 = matmult_sparsity(0.01, 0.01, 10_000);
        assert!(s1 < s2);
        assert!(s2 <= 1.0);
    }

    #[test]
    fn clamp_on_new() {
        let s = SizeInfo::new(2, 2, 7.0);
        assert_eq!(s.sparsity, 1.0);
    }
}
