//! HOP node definitions.

use fusedml_linalg::ops::{AggDir, AggOp, BinaryOp, TernaryOp, UnaryOp};

use crate::dag::HopId;
use crate::size::SizeInfo;

/// The operator kind of a HOP node.
///
/// This is the operator vocabulary of the paper's examples and evaluation
/// workloads: element-wise unary/binary/ternary operations, aggregations
/// (`ua(+)`, `ua(R+)`, `ua(C+)`…), matrix multiplication (`ba(+*)`),
/// transpose (`r(t)`), right indexing (`rix`), cumulative sums, and
/// data/literal leaves.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// An input matrix bound at execution time by name.
    Read { name: String },
    /// A scalar literal.
    Literal { value: f64 },
    /// Element-wise unary map `u(op)`.
    Unary { op: UnaryOp },
    /// Element-wise (broadcasting) binary `b(op)`.
    Binary { op: BinaryOp },
    /// Fused scalar ternary `t(op)` (`+*`, `-*`, `ifelse`).
    Ternary { op: TernaryOp },
    /// Matrix multiplication `ba(+*)`.
    MatMult,
    /// Transpose `r(t)`.
    Transpose,
    /// Aggregation `ua(dir, op)`.
    Agg { op: AggOp, dir: AggDir },
    /// Cumulative aggregation down the rows (`cumsum`).
    CumAgg { op: AggOp },
    /// Right indexing `rix` with static half-open ranges; `None` keeps the
    /// full extent of that dimension.
    RightIndex { rows: Option<(usize, usize)>, cols: Option<(usize, usize)> },
    /// Column binding `cbind`.
    CBind,
    /// Row binding `rbind`.
    RBind,
    /// `diag` (vector→matrix or matrix→vector).
    Diag,
}

impl OpKind {
    /// Short display name in SystemML's HOP notation (used by explain output
    /// and the memo-table debug rendering, cf. paper Figure 5).
    pub fn display_name(&self) -> String {
        match self {
            OpKind::Read { name } => format!("PRead {name}"),
            OpKind::Literal { value } => format!("lit({value})"),
            OpKind::Unary { op } => format!("u({})", op.name()),
            OpKind::Binary { op } => format!("b({})", op.name()),
            OpKind::Ternary { op } => format!("t({})", op.name()),
            OpKind::MatMult => "ba(+*)".to_string(),
            OpKind::Transpose => "r(t)".to_string(),
            OpKind::Agg { op, dir } => {
                let d = match dir {
                    AggDir::Full => "",
                    AggDir::Row => "R",
                    AggDir::Col => "C",
                };
                let o = match op {
                    AggOp::Sum => "+",
                    AggOp::SumSq => "sq+",
                    AggOp::Min => "min",
                    AggOp::Max => "max",
                    AggOp::Mean => "mean",
                };
                format!("ua({d}{o})")
            }
            OpKind::CumAgg { .. } => "u(cumsum)".to_string(),
            OpKind::RightIndex { .. } => "rix".to_string(),
            OpKind::CBind => "append".to_string(),
            OpKind::RBind => "rappend".to_string(),
            OpKind::Diag => "r(diag)".to_string(),
        }
    }

    /// True for leaves (no inputs).
    pub fn is_leaf(&self) -> bool {
        matches!(self, OpKind::Read { .. } | OpKind::Literal { .. })
    }

    /// Number of expected inputs (`None` for leaves).
    pub fn arity(&self) -> usize {
        match self {
            OpKind::Read { .. } | OpKind::Literal { .. } => 0,
            OpKind::Unary { .. }
            | OpKind::Transpose
            | OpKind::Agg { .. }
            | OpKind::CumAgg { .. }
            | OpKind::RightIndex { .. }
            | OpKind::Diag => 1,
            OpKind::Binary { .. } | OpKind::MatMult | OpKind::CBind | OpKind::RBind => 2,
            OpKind::Ternary { .. } => 3,
        }
    }
}

/// A HOP node: operator kind, data dependencies, and inferred size info.
#[derive(Clone, Debug)]
pub struct Hop {
    /// This node's id (index into the DAG arena).
    pub id: HopId,
    /// Operator kind.
    pub kind: OpKind,
    /// Data dependencies, by position.
    pub inputs: Vec<HopId>,
    /// Inferred output size (dimensions + sparsity estimate).
    pub size: SizeInfo,
}

impl Hop {
    /// True if the output is a scalar (1×1) value.
    pub fn is_scalar(&self) -> bool {
        self.size.rows == 1 && self.size.cols == 1
    }

    /// True if the output is a row or column vector.
    pub fn is_vector(&self) -> bool {
        self.size.rows == 1 || self.size.cols == 1
    }
}
