#![allow(clippy::disallowed_methods)] // shim crates are test/bench infrastructure
//! Offline, API-compatible shim for the subset of `parking_lot` used by this
//! workspace (the build container has no network access to crates.io).
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free lock API
//! (no `Result`; a poisoned lock is recovered, matching parking_lot's
//! no-poisoning semantics).

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
