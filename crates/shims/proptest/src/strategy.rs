//! The `Strategy` trait and the combinators the workspace's property tests
//! use. Generation only — no shrinking.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy, cheaply clonable (used by `prop_oneof!`).
pub struct BoxedStrategy<V> {
    sample: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy { sample: Rc::clone(&self.sample) }
    }
}

impl<V> BoxedStrategy<V> {
    pub fn new<S>(strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        BoxedStrategy { sample: Rc::new(move |rng| strategy.generate(rng)) }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Weighted union of strategies sharing one value type.
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0u64..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
