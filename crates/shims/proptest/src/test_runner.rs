//! Test configuration, RNG, and failure type for the proptest shim.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic generator used by all strategies. A thin new-type over the
/// workspace `rand` shim so strategies can use `rand::Rng` methods.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name so distinct tests see distinct (but fully
    /// reproducible) streams.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl rand::Rng for TestRng {
    fn gen<T: rand::Standard>(&mut self) -> T {
        self.0.gen()
    }

    fn gen_range<R: rand::SampleRange>(&mut self, range: R) -> R::Output {
        self.0.gen_range(range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }
}

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (carried by `prop_assert!` via `Err`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}
