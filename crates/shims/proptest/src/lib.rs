#![allow(clippy::disallowed_methods)] // shim crates are test/bench infrastructure
//! Offline, API-compatible shim for the subset of `proptest` used by this
//! workspace (the build container has no network access to crates.io).
//!
//! Supports the `proptest!` test macro with `#![proptest_config(..)]`,
//! `prop_assert!`/`prop_assert_eq!`, `Just`, range and tuple strategies,
//! `prop_map`/`prop_flat_map`, weighted `prop_oneof!`, and
//! `collection::vec`. Unlike upstream proptest there is **no shrinking**:
//! a failing case reports its generated inputs and panics directly.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    // Snapshot the inputs before the body, which may move them.
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::BoxedStrategy::new($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::BoxedStrategy::new($strat))),+
        ])
    };
}
