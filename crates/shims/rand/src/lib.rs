#![allow(clippy::disallowed_methods)] // shim crates are test/bench infrastructure
//! Offline, API-compatible shim for the subset of the `rand` crate used by
//! this workspace (the build container has no network access to crates.io).
//!
//! Implements `StdRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! the integer/float range types the workspace uses. The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic, fast, and of ample
//! quality for synthetic benchmark data; it makes no attempt to match
//! upstream `rand`'s value streams.

pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // splitmix64 stream to fill the state, per the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut rngs::StdRng) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Subset of `rand::Rng`.
pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
