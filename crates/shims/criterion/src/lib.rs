#![allow(clippy::disallowed_methods)] // shim crates are test/bench infrastructure
//! Offline, API-compatible shim for the subset of the `criterion` crate used
//! by this workspace (the build container has no network access to
//! crates.io).
//!
//! Supports `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`, and `Bencher::iter`. Instead of
//! criterion's statistical machinery it times `sample_size` samples per
//! benchmark and prints min/median/max wall-clock per iteration — enough to
//! track the paper's relative mode-vs-mode comparisons over time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: self.default_sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_bench(&id.into(), sample_size, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; records one timed sample per `iter` call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size + 1) };
    f(&mut b); // warm-up sample (discarded)
    b.samples.clear();
    while b.samples.len() < sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{id:<48} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
