#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! Cross-crate integration tests: the full pipeline from DAG construction
//! through optimization, code generation, and execution, validated against
//! the reference interpreter for every fusion mode.

use fusedml::core::FusionMode;
use fusedml::hop::interp::bind;
use fusedml::hop::DagBuilder;
use fusedml::linalg::generate;
use fusedml::runtime::Engine;

const ALL_MODES: [FusionMode; 5] =
    [FusionMode::Base, FusionMode::Fused, FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR];

/// Paper Figure 1(a): sum(X⊙Y⊙Z).
#[test]
fn fig1a_cell_chain_all_modes() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 300, 200, 1.0);
    let y = b.read("Y", 300, 200, 1.0);
    let z = b.read("Z", 300, 200, 1.0);
    let m1 = b.mult(x, y);
    let m2 = b.mult(m1, z);
    let s = b.sum(m2);
    let dag = b.build(vec![s]);
    let bindings = bind(&[
        ("X", generate::rand_dense(300, 200, -1.0, 1.0, 1)),
        ("Y", generate::rand_dense(300, 200, -1.0, 1.0, 2)),
        ("Z", generate::rand_dense(300, 200, -1.0, 1.0, 3)),
    ]);
    let expect = Engine::new(FusionMode::Base).execute(&dag, &bindings)[0].as_scalar();
    for mode in ALL_MODES {
        let got = Engine::new(mode).execute(&dag, &bindings)[0].as_scalar();
        assert!(fusedml::linalg::approx_eq(got, expect, 1e-9), "{mode:?}");
    }
}

/// Paper Figure 1(b): X^T(Xv) single-pass.
#[test]
fn fig1b_mv_chain_all_modes() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 1_000, 100, 1.0);
    let v = b.read("v", 100, 1, 1.0);
    let xv = b.mm(x, v);
    let xt = b.t(x);
    let out = b.mm(xt, xv);
    let dag = b.build(vec![out]);
    let bindings = bind(&[
        ("X", generate::rand_dense(1_000, 100, -1.0, 1.0, 4)),
        ("v", generate::rand_dense(100, 1, -1.0, 1.0, 5)),
    ]);
    let expect = Engine::new(FusionMode::Base).execute(&dag, &bindings)[0].as_matrix();
    for mode in ALL_MODES {
        let got = Engine::new(mode).execute(&dag, &bindings)[0].as_matrix();
        assert!(got.approx_eq(&expect, 1e-9), "{mode:?}");
    }
}

/// Paper Figure 1(c): multi-aggregates with shared inputs.
#[test]
fn fig1c_multi_aggregates_all_modes() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 400, 150, 1.0);
    let y = b.read("Y", 400, 150, 1.0);
    let xsq = b.sq(x);
    let s1 = b.sum(xsq);
    let xy = b.mult(x, y);
    let s2 = b.sum(xy);
    let ysq = b.sq(y);
    let s3 = b.sum(ysq);
    let dag = b.build(vec![s1, s2, s3]);
    let bindings = bind(&[
        ("X", generate::rand_dense(400, 150, -1.0, 1.0, 6)),
        ("Y", generate::rand_dense(400, 150, -1.0, 1.0, 7)),
    ]);
    let expect: Vec<f64> = Engine::new(FusionMode::Base)
        .execute(&dag, &bindings)
        .iter()
        .map(|v| v.as_scalar())
        .collect();
    for mode in ALL_MODES {
        let got: Vec<f64> =
            Engine::new(mode).execute(&dag, &bindings).iter().map(|v| v.as_scalar()).collect();
        for (g, e) in got.iter().zip(&expect) {
            assert!(fusedml::linalg::approx_eq(*g, *e, 1e-9), "{mode:?}");
        }
    }
}

/// Paper Figure 1(d): sparsity exploitation across operations.
#[test]
fn fig1d_outer_loss_all_modes() {
    let (n, m, r) = (500, 400, 10);
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, 0.02);
    let u = b.read("U", n, r, 1.0);
    let v = b.read("V", m, r, 1.0);
    let vt = b.t(v);
    let uvt = b.mm(u, vt);
    let eps = b.lit(1e-15);
    let plus = b.add(uvt, eps);
    let lg = b.log(plus);
    let prod = b.mult(x, lg);
    let s = b.sum(prod);
    let dag = b.build(vec![s]);
    let bindings = bind(&[
        ("X", generate::rand_matrix(n, m, 1.0, 5.0, 0.02, 8)),
        ("U", generate::rand_dense(n, r, 0.1, 1.0, 9)),
        ("V", generate::rand_dense(m, r, 0.1, 1.0, 10)),
    ]);
    let expect = Engine::new(FusionMode::Base).execute(&dag, &bindings)[0].as_scalar();
    for mode in ALL_MODES {
        let got = Engine::new(mode).execute(&dag, &bindings)[0].as_scalar();
        assert!(fusedml::linalg::approx_eq(got, expect, 1e-9), "{mode:?}");
    }
}

/// Gen plans must never be slower than necessary in operator count: the
/// cell chain collapses to exactly one fused operator and zero basic ops.
#[test]
fn gen_operator_counts() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 300, 300, 1.0);
    let y = b.read("Y", 300, 300, 1.0);
    let m = b.mult(x, y);
    let e = b.exp(m);
    let s = b.sum(e);
    let dag = b.build(vec![s]);
    let bindings = bind(&[
        ("X", generate::rand_dense(300, 300, -1.0, 1.0, 11)),
        ("Y", generate::rand_dense(300, 300, -1.0, 1.0, 12)),
    ]);
    let exec = Engine::new(FusionMode::Gen);
    let _ = exec.execute(&dag, &bindings);
    let (fused, _, basic) = exec.stats().snapshot();
    assert_eq!(fused, 1, "one fused operator covers the whole chain");
    assert_eq!(basic, 0, "no basic operators remain");
}

/// The compressed path: CLA sum(X^2) equals uncompressed execution.
#[test]
fn cla_integration() {
    let x = fusedml::linalg::generate::airline_like(5_000, 10, 12, 13);
    let cm = fusedml::cla::compress(&x);
    assert!(cm.compression_ratio() > 2.0);
    let ula = fusedml::linalg::ops::agg(
        &x,
        fusedml::linalg::ops::AggOp::SumSq,
        fusedml::linalg::ops::AggDir::Full,
    )
    .get(0, 0);
    let cla = fusedml::cla::ops::sum_sq(&cm);
    assert!(fusedml::linalg::approx_eq(ula, cla, 1e-9));
}

/// Distributed simulation agrees numerically with local execution.
#[test]
fn distributed_simulation_integration() {
    use fusedml::runtime::dist::{execute_dist, SimCluster};
    let mut b = DagBuilder::new();
    let x = b.read("X", 5_000, 100, 1.0);
    let w = b.read("w", 100, 1, 1.0);
    let xw = b.mm(x, w);
    let sq = b.sq(xw);
    let s = b.sum(sq);
    let dag = b.build(vec![s]);
    let bindings = bind(&[
        ("X", generate::rand_dense(5_000, 100, -1.0, 1.0, 14)),
        ("w", generate::rand_dense(100, 1, -1.0, 1.0, 15)),
    ]);
    let local = Engine::new(FusionMode::Gen).execute(&dag, &bindings)[0].as_scalar();
    let exec = Engine::new(FusionMode::Gen);
    let cluster = SimCluster { local_budget: 1e6, ..SimCluster::default() };
    let (outs, report) = execute_dist(&exec, &dag, &bindings, &cluster);
    assert!(fusedml::linalg::approx_eq(outs[0].as_scalar(), local, 1e-9));
    assert!(report.sim_seconds > 0.0);
}
