#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! Workspace smoke tests: every example must compile, `quickstart` must run
//! to completion, and one full fuse-compile-execute path must agree
//! numerically with the unfused baseline.

use fusedml::core::{optimize, FusionMode};
use fusedml::hop::interp::Bindings;
use fusedml::hop::DagBuilder;
use fusedml::linalg::generate;
use fusedml::runtime::Engine;
use std::process::Command;

/// Invokes the same cargo that runs the tests (offline-safe: all
/// dependencies are path dependencies inside this workspace).
fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR")).arg("--offline");
    cmd
}

#[test]
fn all_examples_compile() {
    let out = cargo().args(["build", "--examples"]).output().expect("cargo build --examples");
    assert!(
        out.status.success(),
        "examples failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let out = cargo().args(["run", "--example", "quickstart"]).output().expect("cargo run");
    assert!(
        out.status.success(),
        "quickstart exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("results agree"),
        "quickstart did not reach its final check:\n{stdout}"
    );
}

/// One end-to-end fuse-compile-execute path, asserted stage by stage:
/// HOP DAG → plan enumeration → code generation → fused runtime execution,
/// with a numeric-equivalence check against the unfused interpreter.
#[test]
fn fuse_compile_execute_matches_unfused_baseline() {
    let (rows, cols) = (300, 40);
    // sum(X ⊙ Y ⊙ Z) + sum((X ⊙ Y)^2): two aggregates sharing X ⊙ Y.
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let y = b.read("Y", rows, cols, 1.0);
    let z = b.read("Z", rows, cols, 1.0);
    let xy = b.mult(x, y);
    let xyz = b.mult(xy, z);
    let s1 = b.sum(xyz);
    let sq = b.sq(xy);
    let s2 = b.sum(sq);
    let dag = b.build(vec![s1, s2]);

    // Plan enumeration must cover the cell-wise chain with fused operators.
    let plan = optimize(&dag, FusionMode::Gen);
    assert!(!plan.operators.is_empty(), "optimizer produced no fused operators");

    // Code generation must have produced a named operator with rendered
    // source per selected plan.
    for op in &plan.operators {
        assert!(!op.op.name.is_empty(), "unnamed generated operator for {:?}", op.roots);
        assert!(
            op.op.source.contains(&op.op.name),
            "rendered source does not mention operator {}",
            op.op.name
        );
    }

    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(rows, cols, -1.0, 1.0, 11));
    bindings.insert("Y".into(), generate::rand_dense(rows, cols, -1.0, 1.0, 12));
    bindings.insert("Z".into(), generate::rand_dense(rows, cols, -1.0, 1.0, 13));

    let fused = Engine::new(FusionMode::Gen).execute(&dag, &bindings);
    let base = Engine::new(FusionMode::Base).execute(&dag, &bindings);
    assert_eq!(fused.len(), base.len());
    for (f, u) in fused.iter().zip(&base) {
        let (f, u) = (f.as_scalar(), u.as_scalar());
        assert!(
            fusedml::linalg::approx_eq(f, u, 1e-9),
            "fused {f} != unfused {u} (beyond tolerance)"
        );
    }
}
