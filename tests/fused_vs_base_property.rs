#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! Property test: fused execution must equal unfused execution on randomly
//! generated DAGs of cell-wise operations, aggregates, and matrix products.

use fusedml::core::FusionMode;
use fusedml::hop::interp::Bindings;
use fusedml::hop::{DagBuilder, HopId};
use fusedml::linalg::generate;
use fusedml::runtime::Engine;
use proptest::prelude::*;

/// A random cell-wise expression over three inputs, closed by a full sum.
#[derive(Debug, Clone)]
struct RandomExpr {
    ops: Vec<u8>,
    rows: usize,
    cols: usize,
}

fn expr_strategy() -> impl Strategy<Value = RandomExpr> {
    (proptest::collection::vec(0u8..6, 1..8), 16usize..64, 8usize..32)
        .prop_map(|(ops, rows, cols)| RandomExpr { ops, rows, cols })
}

fn build(e: &RandomExpr) -> (fusedml::hop::HopDag, Bindings) {
    let mut b = DagBuilder::new();
    let x = b.read("X", e.rows, e.cols, 1.0);
    let y = b.read("Y", e.rows, e.cols, 1.0);
    let v = b.read("v", e.rows, 1, 1.0);
    let mut cur: HopId = x;
    for &op in &e.ops {
        cur = match op {
            0 => b.mult(cur, y),
            1 => b.add(cur, y),
            2 => b.sub(cur, v), // col-vector broadcast
            3 => b.abs(cur),
            4 => b.sq(cur),
            _ => {
                let c = b.lit(1.5);
                b.mult(cur, c)
            }
        };
    }
    let s = b.sum(cur);
    let rs = b.row_sums(cur);
    let s2 = b.sum(rs);
    let dag = b.build(vec![s, s2]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(e.rows, e.cols, -1.0, 1.0, 1));
    bindings.insert("Y".into(), generate::rand_dense(e.rows, e.cols, -1.0, 1.0, 2));
    bindings.insert("v".into(), generate::rand_dense(e.rows, 1, -1.0, 1.0, 3));
    (dag, bindings)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fused_equals_unfused_on_random_dags(e in expr_strategy()) {
        let (dag, bindings) = build(&e);
        let expect: Vec<f64> = Engine::new(FusionMode::Base)
            .execute(&dag, &bindings)
            .iter()
            .map(|x| x.as_scalar())
            .collect();
        for mode in [FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR] {
            let got: Vec<f64> = Engine::new(mode)
                .execute(&dag, &bindings)
                .iter()
                .map(|x| x.as_scalar())
                .collect();
            for (g, x) in got.iter().zip(&expect) {
                prop_assert!(
                    fusedml::linalg::approx_eq(*g, *x, 1e-7),
                    "{mode:?}: {g} vs {x} (ops {:?})", e.ops
                );
            }
        }
    }
}
