#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! Fusion-plan explorer: prints the memo table (paper Figure 5), the plan
//! partitions with interesting points, the enumeration statistics, and the
//! generated operator sources for an expression of your choice.
//!
//! ```text
//! cargo run --release --example fusion_explorer
//! ```

use fusedml::core::explore::explore;
use fusedml::core::opt::{cost, mpskip_enum, partitions, CostModel, EnumConfig};
use fusedml::core::{optimize, FusionMode};
use fusedml::hop::DagBuilder;

fn main() {
    // The paper's Figure 5 expression (MLogreg inner loop):
    // Q = P[,1:k] ⊙ (X v);  H = t(X) %*% (Q − P[,1:k] ⊙ rowSums(Q))
    let (n, m, k) = (100_000, 100, 4);
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, 1.0);
    let v = b.read("v", m, k, 1.0);
    let p = b.read("P", n, k + 1, 1.0);
    let xv = b.mm(x, v);
    let pk = b.rix(p, None, Some((0, k)));
    let q = b.mult(pk, xv);
    let rs = b.row_sums(q);
    let prs = b.mult(pk, rs);
    let diff = b.sub(q, prs);
    let xt = b.t(x);
    let h = b.mm(xt, diff);
    let dag = b.build(vec![h]);

    println!("=== HOP DAG ===\n{}", dag.explain());

    // Phase 1: candidate exploration (OFMC).
    let memo = explore(&dag);
    println!("=== memo table (cf. paper Figure 5) ===\n{}", memo.render(&dag));

    // Phase 2: partitions, interesting points, enumeration.
    let parts = partitions(&dag, &memo);
    let compute = cost::compute_costs(&dag);
    let model = CostModel::default();
    for (i, part) in parts.iter().enumerate() {
        println!(
            "partition {i}: nodes={:?} roots={:?} mat-points={:?}",
            part.nodes, part.roots, part.mat_points
        );
        for ip in &part.interesting {
            println!("  interesting point: {} -> {}", ip.consumer, ip.target);
        }
        let r = mpskip_enum(&dag, &memo, part, &compute, &model, &EnumConfig::default());
        println!(
            "  enumerated: {} plans costed of 2^{} = {} search space; best assignment {:?}",
            r.evaluated,
            part.interesting.len(),
            r.search_space,
            r.assignment
        );
    }

    // Phases 3-5: CPlan construction + code generation.
    let plan = optimize(&dag, FusionMode::Gen);
    println!("\n=== fusion plan ===\n{}", plan.explain());
    for f in &plan.operators {
        println!("=== generated source: {} ===\n{}", f.op.name, f.op.source);
    }
}
