//! Quickstart: build a linear-algebra DAG, let the cost-based optimizer
//! fuse it, and execute it — comparing against unfused execution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fusedml::core::FusionMode;
use fusedml::hop::interp::Bindings;
use fusedml::hop::DagBuilder;
use fusedml::linalg::generate;
use fusedml::runtime::Executor;

fn main() {
    // sum(X ⊙ Y ⊙ Z): three element-wise multiplies and a full aggregate.
    // Unfused execution materializes two n×m intermediates; the fused
    // operator computes the sum in one pass with none.
    let (n, m) = (2_000, 1_000);
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, 1.0);
    let y = b.read("Y", n, m, 1.0);
    let z = b.read("Z", n, m, 1.0);
    let xy = b.mult(x, y);
    let xyz = b.mult(xy, z);
    let s = b.sum(xyz);
    let dag = b.build(vec![s]);
    println!("HOP DAG:\n{}", dag.explain());

    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(n, m, -1.0, 1.0, 1));
    bindings.insert("Y".into(), generate::rand_dense(n, m, -1.0, 1.0, 2));
    bindings.insert("Z".into(), generate::rand_dense(n, m, -1.0, 1.0, 3));

    // Optimize: explore fusion candidates, select the cost-optimal plan,
    // generate the fused operator.
    let exec = Executor::new(FusionMode::Gen);
    let plan = exec.plan_for(&dag);
    println!("Fusion plan:\n{}", plan.explain());
    println!("Generated operator source:\n{}", plan.operators[0].op.source);

    // Execute fused and unfused; both must agree.
    let t0 = std::time::Instant::now();
    let fused = exec.execute(&dag, &bindings)[0].as_scalar();
    let fused_time = t0.elapsed();
    let base_exec = Executor::new(FusionMode::Base);
    let t0 = std::time::Instant::now();
    let base = base_exec.execute(&dag, &bindings)[0].as_scalar();
    let base_time = t0.elapsed();
    println!("fused  = {fused:.6}  ({fused_time:?})");
    println!("unfused= {base:.6}  ({base_time:?})");
    assert!((fused - base).abs() <= 1e-9 * base.abs());
    println!("results agree ✓");
}
