#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! Quickstart: build a linear-algebra DAG, compile it once into a
//! [`CompiledScript`] (the cost-based optimizer fuses it here), and execute
//! the compiled script — comparing against unfused execution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fusedml::core::FusionMode;
use fusedml::hop::interp::bind;
use fusedml::hop::DagBuilder;
use fusedml::linalg::generate;
use fusedml::runtime::Engine;

fn main() {
    // sum(X ⊙ Y ⊙ Z): three element-wise multiplies and a full aggregate.
    // Unfused execution materializes two n×m intermediates; the fused
    // operator computes the sum in one pass with none.
    let (n, m) = (2_000, 1_000);
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, 1.0);
    let y = b.read("Y", n, m, 1.0);
    let z = b.read("Z", n, m, 1.0);
    let xy = b.mult(x, y);
    let xyz = b.mult(xy, z);
    let s = b.sum(xyz);
    let dag = b.build(vec![s]);
    println!("HOP DAG:\n{}", dag.explain());

    let bindings = bind(&[
        ("X", generate::rand_dense(n, m, -1.0, 1.0, 1)),
        ("Y", generate::rand_dense(n, m, -1.0, 1.0, 2)),
        ("Z", generate::rand_dense(n, m, -1.0, 1.0, 3)),
    ]);

    // Compile once: explore fusion candidates, select the cost-optimal plan,
    // generate the fused operator, prepare the task graph. The returned
    // script is Send + Sync and executes from any number of threads.
    let engine = Engine::new(FusionMode::Gen);
    let script = engine.compile(&dag);
    println!("Fusion plan:\n{}", script.explain());
    let plan = script.plan().expect("Gen mode generates operators");
    println!("Generated operator source:\n{}", plan.operators[0].op.source);

    // Execute fused and unfused; both must agree.
    let t0 = std::time::Instant::now();
    let fused = script.execute(&bindings).scalar(0);
    let fused_time = t0.elapsed();
    let base_engine = Engine::new(FusionMode::Base);
    let t0 = std::time::Instant::now();
    let base = base_engine.execute(&dag, &bindings).scalar(0);
    let base_time = t0.elapsed();
    println!("fused  = {fused:.6}  ({fused_time:?})");
    println!("unfused= {base:.6}  ({base_time:?})");
    assert!((fused - base).abs() <= 1e-9 * base.abs());
    println!("results agree ✓");
}
