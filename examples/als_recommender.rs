#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! A sparse recommender via ALS-CG matrix factorization — the paper's
//! sparsity-exploitation showcase (Expression 1, Figure 1(d)).
//!
//! The dense rating plane `U V^T` (here 20k × 5k = 800 MB dense) is never
//! materialized: the optimizer compiles the update rules and loss into
//! sparsity-exploiting Outer-template operators that touch only the
//! observed ratings.
//!
//! ```text
//! cargo run --release --example als_recommender
//! ```

use fusedml::algos::alscg;
use fusedml::core::FusionMode;
use fusedml::runtime::Engine;

fn main() {
    let (users, items, sparsity) = (20_000, 5_000, 0.002);
    let ratings = alscg::synthetic_data(users, items, sparsity, 42);
    println!(
        "ratings: {}x{} with {} observed entries ({}% dense plane avoided: {:.1} MB)",
        users,
        items,
        ratings.nnz(),
        sparsity * 100.0,
        alscg::dense_plane_bytes(users, items) / 1e6
    );

    let exec = Engine::new(FusionMode::Gen);
    let cfg = alscg::AlsConfig { rank: 20, max_iter: 5, ..Default::default() };
    let result = alscg::run(&exec, &ratings, &cfg);
    let (fused, handcoded, basic) = exec.stats().snapshot();
    println!(
        "trained rank-{} factorization in {:.2}s ({} iterations, loss {:.4e})",
        cfg.rank, result.seconds, result.iterations, result.objective
    );
    println!("operators executed: {fused} generated-fused, {handcoded} hand-coded, {basic} basic");
    let snap = exec.optimizer().stats.snapshot();
    println!(
        "optimizer: {} DAGs optimized, {} operators compiled, {} plan-cache hits",
        snap.dags_optimized, snap.operators_compiled, snap.cache_hits
    );

    // Predict a few ratings: r̂(u, i) = U[u,:] · V[i,:].
    let u = result.model[0].as_dense();
    let v = result.model[1].as_dense();
    for (user, item) in [(0usize, 0usize), (7, 123), (100, 4000)] {
        let pred =
            fusedml::linalg::primitives::dot_product(u.row(user), v.row(item), 0, 0, cfg.rank);
        println!("predicted rating for user {user}, item {item}: {pred:.3}");
    }
}
