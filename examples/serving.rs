#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! Model serving: compile a scorer once, answer requests from many threads —
//! and keep serving when one request dies.
//!
//! The paper's premise — fusion-plan optimization is compile-time work
//! amortized over many executions — is exactly the shape of a serving
//! workload: one optimized program, millions of requests. This example
//! compiles the MLogreg scoring expression into a [`CompiledScript`] and
//! drives it from a multi-threaded request loop; every worker shares the
//! engine's buffer pool and kernel caches, and none of them ever re-runs
//! the optimizer.
//!
//! The failure half: a deterministic fault plan injects a worker panic into
//! exactly one request (`TaskPanic` at rate 1.0, fault budget 1). That
//! request comes back as a typed `ExecError` from `try_execute`; the other
//! requests — including later ones on the *same* thread — serve normally,
//! because a contained failure sweeps its slots, returns its pooled
//! buffers, and never poisons the engine.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use fusedml::core::FusionMode;
use fusedml::hop::interp::bind;
use fusedml::hop::DagBuilder;
use fusedml::linalg::fault::{FaultPlan, FaultSite};
use fusedml::linalg::generate;
use fusedml::runtime::EngineBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    // The scorer: raw class scores S = X W for a request batch X, plus the
    // per-row best score — two roots served from one fused pass where the
    // optimizer finds one.
    let (batch, features, classes) = (256, 128, 10);
    let mut b = DagBuilder::new();
    let x = b.read("X", batch, features, 1.0);
    let w = b.read("W", features, classes, 1.0);
    let scores = b.mm(x, w);
    let best = b.row_maxs(scores);
    let dag = b.build(vec![scores, best]);

    // One engine for the process: 2 inter-op workers per request (kernels
    // keep their internal row-band parallelism), a 256 MiB pool budget —
    // and a chaos plan that panics exactly one task across the whole load.
    let faults = Arc::new(FaultPlan::seeded(2024).rate(FaultSite::TaskPanic, 1.0).max_faults(1));
    let engine = EngineBuilder::new(FusionMode::Gen)
        .workers(2)
        .memory_budget(256 << 20)
        .fault_plan(Arc::clone(&faults))
        .build();
    let script = engine.compile(&dag); // optimize + codegen happen HERE, once
    println!("compiled scorer for {batch}x{features} -> {classes} classes");
    println!("plan:\n{}", script.explain());

    // The model is fixed; each request brings its own batch.
    let weights = generate::rand_dense(features, classes, -0.5, 0.5, 42);
    let threads = 8;
    let requests_per_thread = 50;
    let served = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    // The injected panic is caught inside the engine; silence the default
    // hook's backtrace spam for the serving loop.
    std::panic::set_hook(Box::new(|_| {}));
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let script = script.clone();
            let weights = weights.clone();
            let (served, failed) = (&served, &failed);
            s.spawn(move || {
                // Hold the engine scope so retired responses recycle into
                // the shared pool (and the next request reuses them).
                let _scope = script.engine().scope();
                for r in 0..requests_per_thread {
                    let seed = (t * requests_per_thread + r + 1) as u64;
                    let batch_x = generate::rand_dense(batch, features, -1.0, 1.0, seed);
                    match script.try_execute(&bind(&[("X", batch_x), ("W", weights.clone())])) {
                        Ok(out) => {
                            {
                                let best = out.matrix(1);
                                assert_eq!((best.rows(), best.cols()), (batch, 1));
                                // `best` (an Arc clone) must die before the
                                // recycle below, or root 1's buffer is still
                                // shared and silently skips the pool.
                            }
                            // Response consumed: retire its buffers.
                            out.into_values()
                                .into_iter()
                                .for_each(fusedml::linalg::matrix::Value::recycle);
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // One poisoned request, typed and contained;
                            // this thread keeps serving the rest.
                            println!("request {seed} failed cleanly: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    drop(std::panic::take_hook()); // restore the default hook
    let elapsed = t0.elapsed();
    let total = threads * requests_per_thread;
    let (ok, err) = (served.load(Ordering::Relaxed), failed.load(Ordering::Relaxed));
    println!(
        "served {ok}/{total} requests ({err} failed) from {threads} threads in {elapsed:?} \
         ({:.0} req/s)",
        ok as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(err, 1, "the fault budget allows exactly one injected panic");
    assert_eq!(ok, total - 1, "every other request must serve normally");

    // The whole point: zero re-optimization under load.
    let opt = engine.optimizer().stats.snapshot();
    let pool = engine.pool_stats();
    println!(
        "optimizer ran on {} DAG(s); {} operators compiled; recompiles {}; pool hit rate {:.0}%",
        opt.dags_optimized,
        opt.operators_compiled,
        engine.stats().plan_recompiles(),
        100.0 * pool.hits as f64 / (pool.hits + pool.misses).max(1) as f64
    );
    assert_eq!(opt.dags_optimized, 1, "compile once");
    assert_eq!(engine.stats().plan_recompiles(), 0, "no shape drift in this loop");

    // Error-path accounting: the failure is visible in the engine counters,
    // not just in the one rejected request.
    let sched = engine.stats().scheduler_snapshot();
    println!(
        "failures: {} failed execution(s), {} injected fault(s) ({} from the plan), \
         {} spill retries",
        engine.stats().failed_executions(),
        sched.injected_faults,
        faults.total_injected(),
        sched.spill_retries,
    );
    assert_eq!(engine.stats().failed_executions(), 1);
    assert_eq!(faults.total_injected(), 1);

    // Memory tier: the budget is a real contract, so report where the bytes
    // lived. Peak is the worst single run; spill counters sum over the load.
    println!(
        "memory: peak resident {:.2} MB/run, spilled {:.2} MB, reloaded {:.2} MB, \
         prefetch hit rate {:.0}%",
        sched.peak_bytes as f64 / 1e6,
        sched.spilled_bytes as f64 / 1e6,
        sched.reloaded_bytes as f64 / 1e6,
        100.0 * sched.prefetch_hit_rate()
    );
    assert_eq!(sched.spilled_bytes, 0, "a scorer this small must serve entirely in memory");

    // --- Sharded scoring (DESIGN.md substitution X11): the same pattern at
    // bulk scale. A nightly batch of 200k rows scores p = sigmoid(X v); the
    // cost model decides this operator is worth sharding, so the engine
    // row-partitions X across 4 persistent worker shards, broadcasts v, and
    // concatenates the per-shard score blocks — no code change in the
    // serving loop, just `EngineBuilder::shards(4)`.
    let (n, m) = (200_000, 128);
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, 1.0);
    let v = b.read("v", m, 1, 1.0);
    let xv = b.mm(x, v);
    let p = b.sigmoid(xv);
    let bulk = b.build(vec![p]);
    let sharded = EngineBuilder::new(FusionMode::Gen).shards(4).shard_threads(1).build();
    let bulk_script = sharded.compile(&bulk);
    let batch_x = generate::rand_dense(n, m, -1.0, 1.0, 7);
    let model_v = generate::rand_dense(m, 1, -0.5, 0.5, 8);
    let t1 = std::time::Instant::now();
    let out = bulk_script.execute(&bind(&[("X", batch_x), ("v", model_v)]));
    let bulk_elapsed = t1.elapsed();
    let scores = out.matrix(0);
    assert_eq!((scores.rows(), scores.cols()), (n, 1));
    let snap = out.sched();
    println!(
        "sharded scorer: {n} rows in {bulk_elapsed:?} across {} shard(s); {} sharded op(s), \
         broadcast {:.1} KB, partials {:.2} MB, merge {} us, skew {:.2}x",
        sharded.shards(),
        snap.sharded_ops,
        snap.shard_broadcast_bytes as f64 / 1e3,
        snap.shard_partial_bytes as f64 / 1e6,
        snap.shard_merge_us,
        snap.shard_skew_milli as f64 / 1e3,
    );
    assert_eq!(sharded.shards(), 4, "the builder knob spawns the requested pool");
    assert!(snap.sharded_ops > 0, "the planner must shard a 200kx128 scorer");
    assert_eq!(snap.shards_used, 4, "the bulk batch must use every shard");
    assert!(snap.shard_partial_bytes > 0, "per-shard score blocks flow back to the driver");
}
