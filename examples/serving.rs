//! Model serving: compile a scorer once, answer requests from many threads.
//!
//! The paper's premise — fusion-plan optimization is compile-time work
//! amortized over many executions — is exactly the shape of a serving
//! workload: one optimized program, millions of requests. This example
//! compiles the MLogreg scoring expression into a [`CompiledScript`] and
//! drives it from a multi-threaded request loop; every worker shares the
//! engine's buffer pool and kernel caches, and none of them ever re-runs
//! the optimizer.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use fusedml::core::FusionMode;
use fusedml::hop::interp::bind;
use fusedml::hop::DagBuilder;
use fusedml::linalg::generate;
use fusedml::runtime::EngineBuilder;

fn main() {
    // The scorer: raw class scores S = X W for a request batch X, plus the
    // per-row best score — two roots served from one fused pass where the
    // optimizer finds one.
    let (batch, features, classes) = (256, 128, 10);
    let mut b = DagBuilder::new();
    let x = b.read("X", batch, features, 1.0);
    let w = b.read("W", features, classes, 1.0);
    let scores = b.mm(x, w);
    let best = b.row_maxs(scores);
    let dag = b.build(vec![scores, best]);

    // One engine for the process: 2 inter-op workers per request (kernels
    // keep their internal row-band parallelism), a 256 MiB pool budget.
    let engine = EngineBuilder::new(FusionMode::Gen).workers(2).memory_budget(256 << 20).build();
    let script = engine.compile(&dag); // optimize + codegen happen HERE, once
    println!("compiled scorer for {batch}x{features} -> {classes} classes");
    println!("plan:\n{}", script.explain());

    // The model is fixed; each request brings its own batch.
    let weights = generate::rand_dense(features, classes, -0.5, 0.5, 42);
    let threads = 8;
    let requests_per_thread = 50;
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let script = script.clone();
            let weights = weights.clone();
            s.spawn(move || {
                // Hold the engine scope so retired responses recycle into
                // the shared pool (and the next request reuses them).
                let _scope = script.engine().scope();
                for r in 0..requests_per_thread {
                    let seed = (t * requests_per_thread + r + 1) as u64;
                    let batch_x = generate::rand_dense(batch, features, -1.0, 1.0, seed);
                    let out = script.execute(&bind(&[("X", batch_x), ("W", weights.clone())]));
                    {
                        let best = out.matrix(1);
                        assert_eq!((best.rows(), best.cols()), (batch, 1));
                        // `best` (an Arc clone) must die before the recycle
                        // below, or root 1's buffer is still shared and
                        // silently skips the pool.
                    }
                    // Response consumed: retire its buffers.
                    out.into_values().into_iter().for_each(fusedml::linalg::matrix::Value::recycle);
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let total = threads * requests_per_thread;
    println!(
        "served {total} requests from {threads} threads in {elapsed:?} ({:.0} req/s)",
        total as f64 / elapsed.as_secs_f64()
    );

    // The whole point: zero re-optimization under load.
    let opt = engine.optimizer().stats.snapshot();
    let pool = engine.pool_stats();
    println!(
        "optimizer ran on {} DAG(s); {} operators compiled; recompiles {}; pool hit rate {:.0}%",
        opt.dags_optimized,
        opt.operators_compiled,
        engine.stats().plan_recompiles(),
        100.0 * pool.hits as f64 / (pool.hits + pool.misses).max(1) as f64
    );
    assert_eq!(opt.dags_optimized, 1, "compile once");
    assert_eq!(engine.stats().plan_recompiles(), 0, "no shape drift in this loop");

    // Memory tier: the budget is a real contract, so report where the bytes
    // lived. Peak is the worst single run; spill counters sum over the load.
    let sched = engine.stats().scheduler_snapshot();
    println!(
        "memory: peak resident {:.2} MB/run, spilled {:.2} MB, reloaded {:.2} MB, \
         prefetch hit rate {:.0}%",
        sched.peak_bytes as f64 / 1e6,
        sched.spilled_bytes as f64 / 1e6,
        sched.reloaded_bytes as f64 / 1e6,
        100.0 * sched.prefetch_hit_rate()
    );
    assert_eq!(sched.spilled_bytes, 0, "a scorer this small must serve entirely in memory");
}
