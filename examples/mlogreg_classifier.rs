#![allow(clippy::disallowed_methods)] // test/example code may unwrap freely
//! Multinomial logistic regression with the Newton-CG solver whose
//! Hessian-vector product is the paper's Figure 5 expression — compiled to
//! a single-pass Row-template operator.
//!
//! ```text
//! cargo run --release --example mlogreg_classifier
//! ```

use fusedml::algos::mlogreg;
use fusedml::core::FusionMode;
use fusedml::runtime::Engine;

fn main() {
    let (n, m, k) = (50_000, 50, 4);
    let (x, y) = mlogreg::synthetic_data(n, m, k, 1.0, 7);
    println!("training {k}-class MLogreg on {n}x{m} features");

    for mode in [FusionMode::Base, FusionMode::Gen] {
        let exec = Engine::new(mode);
        let cfg =
            mlogreg::MLogregConfig { classes: k, max_outer: 5, max_inner: 5, ..Default::default() };
        let r = mlogreg::run(&exec, &x, &y, &cfg);
        let (fused, _, basic) = exec.stats().snapshot();
        println!(
            "{mode:?}: {:.2}s, {} outer iterations, NLL {:.2}, {} fused / {} basic operators",
            r.seconds, r.iterations, r.objective, fused, basic
        );
    }

    // Show the fusion plan of the Hessian-vector product.
    let exec = Engine::new(FusionMode::Gen);
    let cfg =
        mlogreg::MLogregConfig { classes: k, max_outer: 1, max_inner: 1, ..Default::default() };
    let _ = mlogreg::run(&exec, &x, &y, &cfg);
    println!("\n(the HVP `t(X)(Q − P⊙rowSums(Q))` with `Q = P⊙(Xv)` compiles to one Row operator;");
    println!(" see paper Figure 3(c) / Figure 5 for the corresponding CPlan and memo table)");
}
