// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]
//! # fusedml
//!
//! A Rust reproduction of SystemML's cost-based operator-fusion-plan
//! optimizer (Boehm et al., *On Optimizing Operator Fusion Plans for
//! Large-Scale Machine Learning in SystemML*, VLDB 2018).
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`linalg`] — dense/sparse matrices, kernels, vector primitives,
//! * [`cla`] — compressed linear algebra (column-group compression),
//! * [`hop`] — the HOP DAG compiler IR with size propagation,
//! * [`core`] — the fusion optimizer: OFMC candidate exploration, memo
//!   table, CPlans, code generation, cost model and `MPSkipEnum`,
//! * [`runtime`] — the engine API (`EngineBuilder` → `Engine::compile` →
//!   `CompiledScript`), fused-operator skeletons, the scheduled executor,
//!   and the simulated distributed backend,
//! * [`algos`] — the six ML algorithms of the paper's evaluation.
//!
//! The README quickstart, compile-checked:
//!
//! ```
//! use fusedml::hop::{interp::bind, DagBuilder};
//! use fusedml::linalg::generate;
//! use fusedml::runtime::{EngineBuilder, FusionMode};
//!
//! // sum(X ⊙ Y): fuses into a single-pass Cell operator under Gen.
//! let mut b = DagBuilder::new();
//! let x = b.read("X", 1000, 100, 1.0);
//! let y = b.read("Y", 1000, 100, 1.0);
//! let xy = b.mult(x, y);
//! let s = b.sum(xy);
//! let dag = b.build(vec![s]);
//!
//! let engine = EngineBuilder::new(FusionMode::Gen)
//!     .workers(4)               // inter-operator scheduler workers
//!     .memory_budget(1 << 30)   // buffer-pool retention budget
//!     .build();
//! let script = engine.compile(&dag); // exploration/costing/codegen run once
//! let out = script.execute(&bind(&[
//!     ("X", generate::rand_dense(1000, 100, 0.0, 1.0, 1)),
//!     ("Y", generate::rand_dense(1000, 100, 0.0, 1.0, 2)),
//! ]));
//! assert!(out.scalar(0).is_finite());
//! assert_eq!(engine.optimizer().stats.snapshot().dags_optimized, 1);
//! ```
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use fusedml_algos as algos;
pub use fusedml_cla as cla;
pub use fusedml_core as core;
pub use fusedml_hop as hop;
pub use fusedml_linalg as linalg;
pub use fusedml_runtime as runtime;
