//! # fusedml
//!
//! A Rust reproduction of SystemML's cost-based operator-fusion-plan
//! optimizer (Boehm et al., *On Optimizing Operator Fusion Plans for
//! Large-Scale Machine Learning in SystemML*, VLDB 2018).
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`linalg`] — dense/sparse matrices, kernels, vector primitives,
//! * [`cla`] — compressed linear algebra (column-group compression),
//! * [`hop`] — the HOP DAG compiler IR with size propagation,
//! * [`core`] — the fusion optimizer: OFMC candidate exploration, memo
//!   table, CPlans, code generation, cost model and `MPSkipEnum`,
//! * [`runtime`] — fused-operator skeletons, local executor, and the
//!   simulated distributed backend,
//! * [`algos`] — the six ML algorithms of the paper's evaluation.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use fusedml_algos as algos;
pub use fusedml_cla as cla;
pub use fusedml_core as core;
pub use fusedml_hop as hop;
pub use fusedml_linalg as linalg;
pub use fusedml_runtime as runtime;
